#include "src/compress/tbq.h"

#include <algorithm>
#include <cstring>

#include "src/common/bitops.h"
#include "src/common/thread_pool.h"
#include "src/compress/simd_kernels.h"

namespace hipress {
namespace {

constexpr size_t kHeaderBytes = kCountHeaderBytes + sizeof(float);
constexpr size_t kParallelGrain = 16 * 1024;  // bytes of packed output

}  // namespace

StatusOr<size_t> TbqCompressor::EncodeInto(std::span<const float> gradient,
                                           std::span<uint8_t> out) const {
  const size_t n = gradient.size();
  const size_t needed = kHeaderBytes + PackedBytes(n, 2);
  if (out.size() < needed) {
    return ResourceExhaustedError("tbq: output capacity too small");
  }
  uint8_t* bytes = out.data();
  const uint32_t count = static_cast<uint32_t>(n);
  std::memcpy(bytes, &count, sizeof(count));
  std::memcpy(bytes + sizeof(count), &threshold_, sizeof(threshold_));

  uint8_t* packed = bytes + kHeaderBytes;
  const size_t num_bytes = PackedBytes(n, 2);
  const float tau = threshold_;
  // 4 codes per output byte; shards own disjoint bytes.
  ThreadPool::Global().ParallelFor(
      num_bytes, kParallelGrain, [&](size_t byte_begin, size_t byte_end) {
        const size_t elem_begin = byte_begin * 4;
        const size_t elem_end = std::min(n, byte_end * 4);
        simd::TbqPackCodes(gradient.data() + elem_begin,
                           elem_end - elem_begin, tau, packed + byte_begin,
                           byte_end - byte_begin);
      });
  return needed;
}

namespace {

// Shared decode walk; Accumulate selects overwrite vs fused add.
template <bool kAccumulate>
Status TbqDecodeImpl(const ByteBuffer& in, std::span<float> out) {
  if (in.size() < kHeaderBytes) {
    return InvalidArgumentError("tbq: buffer shorter than header");
  }
  size_t offset = 0;
  const uint32_t count = in.ReadAt<uint32_t>(offset);
  const float tau = in.ReadAt<float>(offset);
  if (out.size() != count) {
    return InvalidArgumentError("tbq: output size mismatch");
  }
  if (in.size() < kHeaderBytes + PackedBytes(count, 2)) {
    return InvalidArgumentError("tbq: truncated payload");
  }
  const uint8_t* packed = in.data() + kHeaderBytes;
  ThreadPool::Global().ParallelFor(
      PackedBytes(count, 2), kParallelGrain,
      [&](size_t byte_begin, size_t byte_end) {
        const size_t elem_begin = byte_begin * 4;
        const size_t elem_end = std::min<size_t>(count, byte_end * 4);
        if constexpr (kAccumulate) {
          simd::TbqUnpackCodesAdd(packed + byte_begin,
                                  elem_end - elem_begin, tau,
                                  out.data() + elem_begin);
        } else {
          simd::TbqUnpackCodes(packed + byte_begin, elem_end - elem_begin,
                               tau, out.data() + elem_begin);
        }
      });
  return OkStatus();
}

}  // namespace

Status TbqCompressor::Decode(const ByteBuffer& in, std::span<float> out) const {
  return TbqDecodeImpl<false>(in, out);
}

Status TbqCompressor::DecodeAdd(const ByteBuffer& in,
                                std::span<float> accum) const {
  return TbqDecodeImpl<true>(in, accum);
}

StatusOr<size_t> TbqCompressor::EncodedElementCount(
    const ByteBuffer& in) const {
  if (in.size() < kCountHeaderBytes) {
    return InvalidArgumentError("tbq: buffer shorter than header");
  }
  size_t offset = 0;
  return static_cast<size_t>(in.ReadAt<uint32_t>(offset));
}

size_t TbqCompressor::MaxEncodedSize(size_t elements) const {
  return kHeaderBytes + PackedBytes(elements, 2);
}

double TbqCompressor::CompressionRate(size_t elements) const {
  if (elements == 0) {
    return 1.0;
  }
  return static_cast<double>(MaxEncodedSize(elements)) /
         static_cast<double>(elements * sizeof(float));
}

}  // namespace hipress
