#include "src/compress/tbq.h"

#include <algorithm>
#include <cstring>

#include "src/common/bitops.h"
#include "src/common/thread_pool.h"

namespace hipress {
namespace {

constexpr size_t kHeaderBytes = kCountHeaderBytes + sizeof(float);
constexpr size_t kParallelGrain = 16 * 1024;  // bytes of packed output

constexpr uint8_t kZero = 0;
constexpr uint8_t kPlus = 1;
constexpr uint8_t kMinus = 2;

}  // namespace

StatusOr<size_t> TbqCompressor::EncodeInto(std::span<const float> gradient,
                                           std::span<uint8_t> out) const {
  const size_t n = gradient.size();
  const size_t needed = kHeaderBytes + PackedBytes(n, 2);
  if (out.size() < needed) {
    return ResourceExhaustedError("tbq: output capacity too small");
  }
  uint8_t* bytes = out.data();
  const uint32_t count = static_cast<uint32_t>(n);
  std::memcpy(bytes, &count, sizeof(count));
  std::memcpy(bytes + sizeof(count), &threshold_, sizeof(threshold_));

  uint8_t* packed = bytes + kHeaderBytes;
  const size_t num_bytes = PackedBytes(n, 2);
  const float tau = threshold_;
  // 4 codes per output byte; shards own disjoint bytes.
  ThreadPool::Global().ParallelFor(
      num_bytes, kParallelGrain, [&](size_t byte_begin, size_t byte_end) {
        for (size_t b = byte_begin; b < byte_end; ++b) {
          uint8_t byte = 0;
          const size_t base = b * 4;
          const size_t limit = std::min<size_t>(4, n - base);
          for (size_t i = 0; i < limit; ++i) {
            const float v = gradient[base + i];
            uint8_t code = kZero;
            if (v > tau) {
              code = kPlus;
            } else if (v < -tau) {
              code = kMinus;
            }
            byte |= static_cast<uint8_t>(code << (2 * i));
          }
          packed[b] = byte;
        }
      });
  return needed;
}

namespace {

// Shared decode walk; Accumulate selects overwrite vs fused add.
template <bool kAccumulate>
Status TbqDecodeImpl(const ByteBuffer& in, std::span<float> out) {
  if (in.size() < kHeaderBytes) {
    return InvalidArgumentError("tbq: buffer shorter than header");
  }
  size_t offset = 0;
  const uint32_t count = in.ReadAt<uint32_t>(offset);
  const float tau = in.ReadAt<float>(offset);
  if (out.size() != count) {
    return InvalidArgumentError("tbq: output size mismatch");
  }
  if (in.size() < kHeaderBytes + PackedBytes(count, 2)) {
    return InvalidArgumentError("tbq: truncated payload");
  }
  const uint8_t* packed = in.data() + kHeaderBytes;
  ThreadPool::Global().ParallelFor(
      PackedBytes(count, 2), kParallelGrain,
      [&](size_t byte_begin, size_t byte_end) {
        for (size_t b = byte_begin; b < byte_end; ++b) {
          const uint8_t byte = packed[b];
          const size_t base = b * 4;
          const size_t limit = std::min<size_t>(4, count - base);
          for (size_t i = 0; i < limit; ++i) {
            const uint8_t code = (byte >> (2 * i)) & 3u;
            float value = 0.0f;
            if (code == kPlus) {
              value = tau;
            } else if (code == kMinus) {
              value = -tau;
            }
            if constexpr (kAccumulate) {
              out[base + i] += value;
            } else {
              out[base + i] = value;
            }
          }
        }
      });
  return OkStatus();
}

}  // namespace

Status TbqCompressor::Decode(const ByteBuffer& in, std::span<float> out) const {
  return TbqDecodeImpl<false>(in, out);
}

Status TbqCompressor::DecodeAdd(const ByteBuffer& in,
                                std::span<float> accum) const {
  return TbqDecodeImpl<true>(in, accum);
}

StatusOr<size_t> TbqCompressor::EncodedElementCount(
    const ByteBuffer& in) const {
  if (in.size() < kCountHeaderBytes) {
    return InvalidArgumentError("tbq: buffer shorter than header");
  }
  size_t offset = 0;
  return static_cast<size_t>(in.ReadAt<uint32_t>(offset));
}

size_t TbqCompressor::MaxEncodedSize(size_t elements) const {
  return kHeaderBytes + PackedBytes(elements, 2);
}

double TbqCompressor::CompressionRate(size_t elements) const {
  if (elements == 0) {
    return 1.0;
  }
  return static_cast<double>(MaxEncodedSize(elements)) /
         static_cast<double>(elements * sizeof(float));
}

}  // namespace hipress
