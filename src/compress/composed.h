// ComposedCompressor — sparsify, then quantize the survivors.
//
// Sparsifiers (DGC/GradDrop/Random-K) ship fp32 values for the kept
// elements; for very aggressive pipelines the values themselves can be
// quantized too (GRACE catalogues several such stacks). This adapter runs
// an outer sparse codec, then re-encodes its value array with an inner
// dense codec:
//
//   outer payload: count | k | indices        (from the sparse codec)
//   inner payload: the k values, quantized    (from the dense codec)
//
// Encoded layout:
//   uint32 count | uint32 k | k * uint32 indices | uint32 inner_size |
//   inner payload
//
// Decode reverses both stages. Compression rate multiplies roughly as
// outer_rate * inner_rate / value_share.
#ifndef HIPRESS_SRC_COMPRESS_COMPOSED_H_
#define HIPRESS_SRC_COMPRESS_COMPOSED_H_

#include <functional>
#include <memory>
#include <string>

#include "src/compress/compressor.h"

namespace hipress {

class ComposedCompressor : public Compressor {
 public:
  // `sparsifier` must produce the shared sparse payload layout (DGC,
  // GradDrop, or any codec whose is_sparse() is true); `quantizer` is any
  // dense codec. Both are owned.
  static StatusOr<std::unique_ptr<ComposedCompressor>> Create(
      std::unique_ptr<Compressor> sparsifier,
      std::unique_ptr<Compressor> quantizer);

  // Convenience: build from registry names, e.g. ("dgc", "fp16").
  static StatusOr<std::unique_ptr<ComposedCompressor>> CreateFromNames(
      const std::string& sparsifier, const std::string& quantizer,
      const CompressorParams& params = {});

  std::string_view name() const override { return name_; }
  bool is_sparse() const override { return true; }

  StatusOr<size_t> EncodeInto(std::span<const float> gradient,
                              std::span<uint8_t> out) const override;
  Status Decode(const ByteBuffer& in, std::span<float> out) const override;
  Status DecodeAdd(const ByteBuffer& in, std::span<float> accum) const override;
  StatusOr<size_t> EncodedElementCount(const ByteBuffer& in) const override;
  size_t MaxEncodedSize(size_t elements) const override;
  size_t WorstCaseEncodedSize(size_t elements) const override;
  double CompressionRate(size_t elements) const override;

 private:
  ComposedCompressor(std::unique_ptr<Compressor> sparsifier,
                     std::unique_ptr<Compressor> quantizer);

  // Decodes indices and quantized values; calls `emit(index, value)`.
  Status DecodeEach(const ByteBuffer& in, size_t expected_elements,
                    const std::function<void(uint32_t, float)>& emit) const;

  std::string name_;
  std::unique_ptr<Compressor> sparsifier_;
  std::unique_ptr<Compressor> quantizer_;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_COMPRESS_COMPOSED_H_
