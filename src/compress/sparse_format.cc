#include "src/compress/sparse_format.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"

namespace hipress {

void SparseEncode(uint32_t original_count, std::span<const uint32_t> indices,
                  std::span<const float> values, ByteBuffer* out) {
  out->Resize(SparseEncodedSize(indices.size()));
  const StatusOr<size_t> written =
      SparseEncodeInto(original_count, indices, values, out->span());
  CHECK(written.ok()) << written.status();
}

StatusOr<size_t> SparseEncodeInto(uint32_t original_count,
                                  std::span<const uint32_t> indices,
                                  std::span<const float> values,
                                  std::span<uint8_t> out) {
  CHECK_EQ(indices.size(), values.size());
  const uint32_t k = static_cast<uint32_t>(indices.size());
  const size_t needed = SparseEncodedSize(k);
  if (out.size() < needed) {
    return ResourceExhaustedError("sparse: output capacity too small");
  }
  uint8_t* bytes = out.data();
  size_t write = 0;
  std::memcpy(bytes + write, &original_count, sizeof(original_count));
  write += sizeof(original_count);
  std::memcpy(bytes + write, &k, sizeof(k));
  write += sizeof(k);
  if (k > 0) {
    std::memcpy(bytes + write, indices.data(), k * sizeof(uint32_t));
    write += k * sizeof(uint32_t);
    std::memcpy(bytes + write, values.data(), k * sizeof(float));
  }
  return needed;
}

StatusOr<SparseView> SparseParse(const ByteBuffer& in) {
  if (in.size() < 2 * sizeof(uint32_t)) {
    return InvalidArgumentError("sparse: buffer shorter than header");
  }
  SparseView view;
  size_t offset = 0;
  view.count = in.ReadAt<uint32_t>(offset);
  view.k = in.ReadAt<uint32_t>(offset);
  if (view.k > view.count) {
    return InvalidArgumentError("sparse: k exceeds element count");
  }
  if (in.size() < SparseEncodedSize(view.k)) {
    return InvalidArgumentError("sparse: truncated payload");
  }
  view.indices =
      reinterpret_cast<const uint32_t*>(in.data() + 2 * sizeof(uint32_t));
  view.values = reinterpret_cast<const float*>(
      in.data() + 2 * sizeof(uint32_t) + view.k * sizeof(uint32_t));
  return view;
}

Status SparseDecode(const ByteBuffer& in, std::span<float> out) {
  ASSIGN_OR_RETURN(SparseView view, SparseParse(in));
  if (out.size() != view.count) {
    return InvalidArgumentError("sparse: output size mismatch");
  }
  std::fill(out.begin(), out.end(), 0.0f);
  for (uint32_t i = 0; i < view.k; ++i) {
    if (view.indices[i] >= view.count) {
      return InvalidArgumentError("sparse: index out of range");
    }
    out[view.indices[i]] = view.values[i];
  }
  return OkStatus();
}

Status SparseDecodeAdd(const ByteBuffer& in, std::span<float> accum) {
  ASSIGN_OR_RETURN(SparseView view, SparseParse(in));
  if (accum.size() != view.count) {
    return InvalidArgumentError("sparse: accumulator size mismatch");
  }
  for (uint32_t i = 0; i < view.k; ++i) {
    if (view.indices[i] >= view.count) {
      return InvalidArgumentError("sparse: index out of range");
    }
    accum[view.indices[i]] += view.values[i];
  }
  return OkStatus();
}

}  // namespace hipress
