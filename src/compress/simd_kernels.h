// Hand-vectorized inner loops for the hottest built-in codecs: onebit, TBQ
// and fp16 (docs/KERNELS.md). Every primitive ships three variants — scalar,
// AVX2, AVX-512 — selected per call from ActiveSimdTier(); the variants are
// bit-identical by construction, so the dispatch tier changes throughput
// only, never a single output byte.
//
// Determinism contract (what makes cross-tier and cross-machine encoded
// bytes reproducible):
//   * Reductions (OnebitSignStats) follow a fixed 8-lane schedule — lane j
//     accumulates elements with index ≡ j (mod 8) in double precision and
//     the lanes merge in ascending order. The scalar variant executes the
//     exact same schedule, so AVX2 (2×4 double lanes) and AVX-512 (1×8)
//     produce the same sums to the last bit. Callers that parallelize must
//     shard on kReduceBlockElements boundaries and merge block partials in
//     block order (see OnebitCompressor::EncodeInto).
//   * Pack/unpack primitives are per-element maps with no cross-lane
//     arithmetic; shards must be aligned to whole output byte groups
//     (8 elements for 1-bit, 4 for 2-bit) so no two shards touch one byte.
//   * fp16 conversion uses IEEE round-to-nearest-even everywhere; the
//     scalar FloatToHalf in fp16.h mirrors the F16C/AVX-512 hardware
//     semantics bit for bit, including NaN payload truncation.
//
// Capacity is a hard contract: each pack kernel CHECK-aborts when the
// caller-reported output capacity cannot hold the packed bytes — a lying
// capacity would otherwise scribble past the buffer at vector width.
#ifndef HIPRESS_SRC_COMPRESS_SIMD_KERNELS_H_
#define HIPRESS_SRC_COMPRESS_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "src/common/simd.h"

namespace hipress::simd {

// Fixed block size for deterministic parallel reductions: callers compute
// one partial per 4096-element block (in parallel) and merge the partials
// in block order, making the result independent of both thread count and
// SIMD tier.
inline constexpr size_t kReduceBlockElements = 4096;

// ------------------------------------------------------------------ onebit

struct SignStats {
  double pos_sum = 0.0;
  double neg_sum = 0.0;
  uint64_t pos_count = 0;
};

// 8-lane deterministic signed-sum/count over x[0..n). NaNs count as
// negative (matching `v >= 0.0f` being false).
SignStats OnebitSignStats(const float* x, size_t n);

// Packs sign bits (x[i] >= 0) into out, 8 elements per byte, LSB first;
// trailing bits of a partial final byte are zero. CHECK-aborts unless
// out_bytes >= PackedBytes(n, 1).
void OnebitPackSigns(const float* x, size_t n, uint8_t* out,
                     size_t out_bytes);

// out[i] = bit_i ? pos : neg (overwrite) / accum[i] += ... (fused add).
void OnebitUnpackSigns(const uint8_t* packed, size_t n, float neg, float pos,
                       float* out);
void OnebitUnpackSignsAdd(const uint8_t* packed, size_t n, float neg,
                          float pos, float* accum);

// --------------------------------------------------------------------- tbq

// Packs ternary codes (0: |x| <= tau, 1: x > tau, 2: x < -tau) into out,
// 4 elements per byte, 2 bits each, LSB first. CHECK-aborts unless
// out_bytes >= PackedBytes(n, 2).
void TbqPackCodes(const float* x, size_t n, float tau, uint8_t* out,
                  size_t out_bytes);

// out[i] = {0, +tau, -tau}[code_i] (overwrite) / accum[i] += ... .
void TbqUnpackCodes(const uint8_t* packed, size_t n, float tau, float* out);
void TbqUnpackCodesAdd(const uint8_t* packed, size_t n, float tau,
                       float* accum);

// -------------------------------------------------------------------- fp16

// IEEE binary16 conversion, round-to-nearest-even; bit-identical to the
// scalar FloatToHalf/HalfToFloat in fp16.h on every input including NaN
// payloads and subnormal ties. CHECK-aborts unless out_capacity >= n.
void Fp16Encode(const float* x, size_t n, uint16_t* out, size_t out_capacity);
void Fp16Decode(const uint16_t* halves, size_t n, float* out);
void Fp16DecodeAdd(const uint16_t* halves, size_t n, float* accum);

}  // namespace hipress::simd

#endif  // HIPRESS_SRC_COMPRESS_SIMD_KERNELS_H_
