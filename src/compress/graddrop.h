// GradDrop — sparse communication for distributed SGD (Aji & Heafield,
// 2017). Drops all but (approximately) the top `sparsity_ratio` fraction of
// elements by absolute value. Unlike DGC there is no exact-k fixup: the
// threshold comes from a deterministic sample quantile and every element at
// or above it is sent, so the selected count jitters around the target —
// matching the original algorithm. Dropped values are retained locally by
// the ErrorFeedback wrapper.
#ifndef HIPRESS_SRC_COMPRESS_GRADDROP_H_
#define HIPRESS_SRC_COMPRESS_GRADDROP_H_

#include "src/compress/compressor.h"

namespace hipress {

class GradDropCompressor : public Compressor {
 public:
  explicit GradDropCompressor(const CompressorParams& params)
      : ratio_(params.sparsity_ratio), seed_(params.seed) {}

  std::string_view name() const override { return "graddrop"; }
  bool is_sparse() const override { return true; }

  StatusOr<size_t> EncodeInto(std::span<const float> gradient,
                              std::span<uint8_t> out) const override;
  Status Decode(const ByteBuffer& in, std::span<float> out) const override;
  Status DecodeAdd(const ByteBuffer& in, std::span<float> accum) const override;
  StatusOr<size_t> EncodedElementCount(const ByteBuffer& in) const override;
  size_t MaxEncodedSize(size_t elements) const override;
  size_t WorstCaseEncodedSize(size_t elements) const override;
  double CompressionRate(size_t elements) const override;

  double ratio() const { return ratio_; }

 private:
  double ratio_;
  uint64_t seed_;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_COMPRESS_GRADDROP_H_
