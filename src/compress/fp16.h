// fp16 — half-precision truncation codec.
//
// Not one of the paper's five evaluated algorithms, but the baseline every
// gradient-compression library ships (GRACE includes it, and frameworks'
// "fp16 allreduce" is the most widely deployed compression of all). Rate is
// exactly 1/2; the error is bounded by half-precision rounding. Useful in
// benches as the conservative end of the rate spectrum.
//
// Encoded layout: uint32 count | count * 2-byte IEEE half values.
#ifndef HIPRESS_SRC_COMPRESS_FP16_H_
#define HIPRESS_SRC_COMPRESS_FP16_H_

#include "src/compress/compressor.h"

namespace hipress {

// Scalar conversions (round-to-nearest-even, overflow to +/-inf).
uint16_t FloatToHalf(float value);
float HalfToFloat(uint16_t half);

class Fp16Compressor : public Compressor {
 public:
  explicit Fp16Compressor(const CompressorParams& params = {}) {}

  std::string_view name() const override { return "fp16"; }
  bool is_sparse() const override { return false; }

  StatusOr<size_t> EncodeInto(std::span<const float> gradient,
                              std::span<uint8_t> out) const override;
  Status Decode(const ByteBuffer& in, std::span<float> out) const override;
  Status DecodeAdd(const ByteBuffer& in, std::span<float> accum) const override;
  StatusOr<size_t> EncodedElementCount(const ByteBuffer& in) const override;
  size_t MaxEncodedSize(size_t elements) const override;
  double CompressionRate(size_t elements) const override;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_COMPRESS_FP16_H_
