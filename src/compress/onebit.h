// onebit — 1-bit stochastic gradient quantization (Seide et al., 2014).
//
// Each element is reduced to its sign bit; the decoder reconstructs with the
// mean of the positive values for 1-bits and the mean of the negative values
// for 0-bits, which minimizes the L2 reconstruction error for a two-level
// quantizer. Data volume drops to 1/32 of fp32 (+12 header bytes), the
// "96.9% reduction" quoted in Section 2.4. Intended to be wrapped in
// ErrorFeedback so the quantization error is carried to the next iteration.
//
// Encoded layout:
//   uint32 count | float neg_mean | float pos_mean | ceil(count/8) sign bytes
#ifndef HIPRESS_SRC_COMPRESS_ONEBIT_H_
#define HIPRESS_SRC_COMPRESS_ONEBIT_H_

#include "src/compress/compressor.h"

namespace hipress {

class OnebitCompressor : public Compressor {
 public:
  explicit OnebitCompressor(const CompressorParams& params = {}) {}

  std::string_view name() const override { return "onebit"; }
  bool is_sparse() const override { return false; }

  StatusOr<size_t> EncodeInto(std::span<const float> gradient,
                              std::span<uint8_t> out) const override;
  Status Decode(const ByteBuffer& in, std::span<float> out) const override;
  Status DecodeAdd(const ByteBuffer& in, std::span<float> accum) const override;
  StatusOr<size_t> EncodedElementCount(const ByteBuffer& in) const override;
  size_t MaxEncodedSize(size_t elements) const override;
  double CompressionRate(size_t elements) const override;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_COMPRESS_ONEBIT_H_
