// TernGrad — stochastic low-bitwidth quantization (Wen et al., 2017),
// generalized to a configurable bitwidth exactly as in the paper's Figure 5
// CompLL DSL program:
//
//   gap  = (max - min) / (2^bitwidth - 1)
//   Q[i] = floor((g[i] - min) / gap + uniform[0,1))
//
// The stochastic rounding makes the quantizer unbiased (E[decode(Q)] = g),
// which is what preserves convergence. bitwidth=2 is the paper's default;
// Figure 12b sweeps 2/4/8 bits.
//
// Encoded layout:
//   uint32 count | uint8 bitwidth | float min | float max | packed codes
#ifndef HIPRESS_SRC_COMPRESS_TERNGRAD_H_
#define HIPRESS_SRC_COMPRESS_TERNGRAD_H_

#include "src/compress/compressor.h"

namespace hipress {

class TernGradCompressor : public Compressor {
 public:
  explicit TernGradCompressor(const CompressorParams& params)
      : bitwidth_(params.bitwidth), seed_(params.seed) {}

  std::string_view name() const override { return "terngrad"; }
  bool is_sparse() const override { return false; }

  StatusOr<size_t> EncodeInto(std::span<const float> gradient,
                              std::span<uint8_t> out) const override;
  Status Decode(const ByteBuffer& in, std::span<float> out) const override;
  Status DecodeAdd(const ByteBuffer& in, std::span<float> accum) const override;
  StatusOr<size_t> EncodedElementCount(const ByteBuffer& in) const override;
  size_t MaxEncodedSize(size_t elements) const override;
  double CompressionRate(size_t elements) const override;

  unsigned bitwidth() const { return bitwidth_; }

 private:
  unsigned bitwidth_;
  uint64_t seed_;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_COMPRESS_TERNGRAD_H_
