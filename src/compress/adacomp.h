// AdaComp — adaptive residual gradient compression (Chen et al., 2017).
//
// Section 4.4 cites AdaComp as expressible in CompLL with map, reduce,
// filter, concat and extract; here it is also a first-class native codec.
// The algorithm divides the gradient into fixed-size bins, finds each bin's
// local maximum magnitude, and selects every element whose magnitude
// reaches `selectivity` x that local max — self-adapting the effective
// sparsity per layer and per bin (dense bins send more, flat bins less).
// Dropped elements are carried by ErrorFeedback as usual.
//
// Encoded layout: the shared sparse payload (count | k | indices | values).
#ifndef HIPRESS_SRC_COMPRESS_ADACOMP_H_
#define HIPRESS_SRC_COMPRESS_ADACOMP_H_

#include "src/compress/compressor.h"

namespace hipress {

class AdaCompCompressor : public Compressor {
 public:
  // params.threshold is reused as the selectivity factor in (0, 1]; the
  // original paper's recipe corresponds to ~1.0 with residual doubling —
  // lower values keep more elements per bin.
  explicit AdaCompCompressor(const CompressorParams& params)
      : selectivity_(params.threshold > 0 && params.threshold <= 1.0f
                         ? params.threshold
                         : 0.9f) {}

  static constexpr size_t kBinSize = 512;

  std::string_view name() const override { return "adacomp"; }
  bool is_sparse() const override { return true; }

  StatusOr<size_t> EncodeInto(std::span<const float> gradient,
                              std::span<uint8_t> out) const override;
  Status Decode(const ByteBuffer& in, std::span<float> out) const override;
  Status DecodeAdd(const ByteBuffer& in, std::span<float> accum) const override;
  StatusOr<size_t> EncodedElementCount(const ByteBuffer& in) const override;
  size_t MaxEncodedSize(size_t elements) const override;
  size_t WorstCaseEncodedSize(size_t elements) const override;
  double CompressionRate(size_t elements) const override;

  float selectivity() const { return selectivity_; }

 private:
  float selectivity_;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_COMPRESS_ADACOMP_H_
