#include "src/compress/dgc.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <future>
#include <vector>

#include "src/common/buffer_pool.h"
#include "src/common/thread_pool.h"
#include "src/compress/sparse_format.h"

namespace hipress {
namespace {

// Below this size exact selection is cheaper than sampling + fixup.
constexpr size_t kExactSelectionLimit = 1 << 16;

// Exact top-k: returns the k-th largest magnitude (selection threshold).
float ExactThreshold(std::span<const float> gradient, size_t k,
                     Workspace& ws) {
  PooledFloats magnitudes = ws.floats(gradient.size());
  for (size_t i = 0; i < gradient.size(); ++i) {
    magnitudes[i] = std::abs(gradient[i]);
  }
  std::nth_element(magnitudes.begin(), magnitudes.begin() + (k - 1),
                   magnitudes.end(), std::greater<float>());
  return magnitudes[k - 1];
}

// Sampled threshold: deterministic strided sample, then quantile selection.
float SampledThreshold(std::span<const float> gradient, size_t k,
                       uint64_t seed, Workspace& ws) {
  const size_t n = gradient.size();
  const size_t sample_size = std::max<size_t>(4096, n / 100);
  const size_t stride = std::max<size_t>(1, n / sample_size);
  const size_t start = seed % stride;
  PooledFloats sample = ws.floats(0);
  sample.reserve(n / stride + 1);
  for (size_t i = start; i < n; i += stride) {
    sample.push_back(std::abs(gradient[i]));
  }
  // Keep the same fraction in the sample as in the full gradient.
  size_t sample_k = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(k) * sample.size() /
                             static_cast<double>(n)));
  sample_k = std::min(sample_k, sample.size());
  std::nth_element(sample.begin(), sample.begin() + (sample_k - 1),
                   sample.end(), std::greater<float>());
  return sample[sample_k - 1];
}

}  // namespace

size_t DgcCompressor::TargetK(size_t elements) const {
  if (elements == 0) {
    return 0;
  }
  return std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(static_cast<double>(elements) * ratio_)));
}

StatusOr<size_t> DgcCompressor::EncodeInto(std::span<const float> gradient,
                                           std::span<uint8_t> out) const {
  Workspace ws;
  const size_t n = gradient.size();
  const size_t target_k = TargetK(n);
  if (n == 0) {
    return SparseEncodeInto(0, {}, {}, out);
  }

  const float threshold =
      n <= kExactSelectionLimit
          ? ExactThreshold(gradient, target_k, ws)
          : SampledThreshold(gradient, target_k, seed_, ws);

  // Parallel scan: collect indices above the threshold per shard, in order.
  const size_t num_shards =
      std::min<size_t>(ThreadPool::Global().num_threads(),
                       std::max<size_t>(1, n / (256 * 1024)) );
  std::vector<PooledU32> shard_hits;
  for (size_t s = 0; s < std::max<size_t>(1, num_shards); ++s) {
    shard_hits.emplace_back(ws.pool());
  }
  {
    const size_t shards = shard_hits.size();
    const size_t shard_size = (n + shards - 1) / shards;
    std::vector<std::future<void>> futures;
    for (size_t s = 0; s < shards; ++s) {
      const size_t begin = s * shard_size;
      const size_t end = std::min(n, begin + shard_size);
      if (begin >= end) {
        continue;
      }
      futures.push_back(ThreadPool::Global().Submit([&, s, begin, end] {
        auto& hits = shard_hits[s];
        for (size_t i = begin; i < end; ++i) {
          if (std::abs(gradient[i]) >= threshold) {
            hits.push_back(static_cast<uint32_t>(i));
          }
        }
      }));
    }
    for (auto& f : futures) {
      f.wait();
    }
  }

  PooledU32 indices = ws.indices(0);
  {
    size_t total = 0;
    for (const auto& hits : shard_hits) {
      total += hits.size();
    }
    indices.reserve(total);
    for (const auto& hits : shard_hits) {
      for (const uint32_t hit : hits) {
        indices.push_back(hit);
      }
    }
  }

  // Sampling can overshoot; trim to exactly target_k by magnitude, then
  // restore index order. (It can also undershoot, in which case we send the
  // smaller set — the original DGC accepts the same slack.)
  if (indices.size() > target_k) {
    std::nth_element(indices.begin(), indices.begin() + (target_k - 1),
                     indices.end(), [&](uint32_t a, uint32_t b) {
                       return std::abs(gradient[a]) > std::abs(gradient[b]);
                     });
    indices.resize(target_k);
    std::sort(indices.begin(), indices.end());
  }
  if (indices.empty()) {
    // Degenerate all-zero gradient: send the single largest element so the
    // payload is never empty (keeps k >= 1 like TargetK promises).
    uint32_t best = 0;
    for (size_t i = 1; i < n; ++i) {
      if (std::abs(gradient[i]) > std::abs(gradient[best])) {
        best = static_cast<uint32_t>(i);
      }
    }
    indices.push_back(best);
  }

  PooledFloats values = ws.floats(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    values[i] = gradient[indices[i]];
  }
  return SparseEncodeInto(static_cast<uint32_t>(n), indices.span(),
                          values.span(), out);
}

Status DgcCompressor::Decode(const ByteBuffer& in, std::span<float> out) const {
  return SparseDecode(in, out);
}

Status DgcCompressor::DecodeAdd(const ByteBuffer& in,
                                std::span<float> accum) const {
  return SparseDecodeAdd(in, accum);
}

StatusOr<size_t> DgcCompressor::EncodedElementCount(
    const ByteBuffer& in) const {
  ASSIGN_OR_RETURN(SparseView view, SparseParse(in));
  return static_cast<size_t>(view.count);
}

size_t DgcCompressor::MaxEncodedSize(size_t elements) const {
  return SparseEncodedSize(TargetK(elements));
}

double DgcCompressor::CompressionRate(size_t elements) const {
  if (elements == 0) {
    return 1.0;
  }
  return static_cast<double>(MaxEncodedSize(elements)) /
         static_cast<double>(elements * sizeof(float));
}

}  // namespace hipress
