// Error-feedback (residual) state for lossy gradient compression.
//
// Lossy codecs only preserve convergence when the compression error is
// carried into the next iteration instead of discarded (1-bit SGD's error
// carry, DGC's local accumulation, TBQ's residual). The recipe:
//
//   corrected = gradient + residual
//   payload   = encode(corrected)
//   residual  = corrected - decode(payload)
//
// Residuals are keyed by gradient name, one per layer, matching the paper's
// layer-wise compression. The wrapper is what the convergence experiments
// (Figure 13) train through.
#ifndef HIPRESS_SRC_COMPRESS_ERROR_FEEDBACK_H_
#define HIPRESS_SRC_COMPRESS_ERROR_FEEDBACK_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/compress/compressor.h"

namespace hipress {

class ErrorFeedback {
 public:
  explicit ErrorFeedback(std::shared_ptr<const Compressor> compressor)
      : compressor_(std::move(compressor)) {}

  // Applies error feedback for the gradient identified by `key` and encodes
  // the corrected gradient into `out`. The stored residual is updated.
  Status EncodeWithFeedback(const std::string& key,
                            std::span<const float> gradient, ByteBuffer* out);

  // Residual currently stored for `key` (empty if none yet).
  std::span<const float> residual(const std::string& key) const;

  const Compressor& compressor() const { return *compressor_; }

  void Reset() { residuals_.clear(); }

 private:
  std::shared_ptr<const Compressor> compressor_;
  std::unordered_map<std::string, std::vector<float>> residuals_;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_COMPRESS_ERROR_FEEDBACK_H_
