// Naive "open-source" codec baselines.
//
// Section 4.4 compares CompLL's generated kernels against the open-source
// implementations of the same algorithms (BytePS's CPU onebit, the Horovod
// DGC pull request, etc.) and reports 5-35x speedups. We reproduce that
// contrast by re-implementing each algorithm the way the OSS versions do:
// single-threaded, one element at a time through generic bit I/O, with extra
// temporary buffers and full sorts where the originals used them. They emit
// byte-identical formats to the optimized codecs (TernGrad excepted only in
// its rounding stream), so they interoperate with the optimized decoders in
// tests.
#ifndef HIPRESS_SRC_COMPRESS_OSS_BASELINES_H_
#define HIPRESS_SRC_COMPRESS_OSS_BASELINES_H_

#include "src/compress/compressor.h"

namespace hipress {

// BytePS's onebit was CPU-only (Section 2.5: 35.6x slower than our GPU
// version). Single-threaded, three full passes, per-bit writes.
class OssOnebitCompressor : public Compressor {
 public:
  explicit OssOnebitCompressor(const CompressorParams& params = {}) {}
  std::string_view name() const override { return "oss-onebit"; }
  bool is_sparse() const override { return false; }
  StatusOr<size_t> EncodeInto(std::span<const float> gradient,
                              std::span<uint8_t> out) const override;
  Status Decode(const ByteBuffer& in, std::span<float> out) const override;
  StatusOr<size_t> EncodedElementCount(const ByteBuffer& in) const override;
  size_t MaxEncodedSize(size_t elements) const override;
  double CompressionRate(size_t elements) const override;
};

// OSS TBQ: single-threaded, generic 2-bit writes per element.
class OssTbqCompressor : public Compressor {
 public:
  explicit OssTbqCompressor(const CompressorParams& params)
      : threshold_(params.threshold) {}
  std::string_view name() const override { return "oss-tbq"; }
  bool is_sparse() const override { return false; }
  StatusOr<size_t> EncodeInto(std::span<const float> gradient,
                              std::span<uint8_t> out) const override;
  Status Decode(const ByteBuffer& in, std::span<float> out) const override;
  StatusOr<size_t> EncodedElementCount(const ByteBuffer& in) const override;
  size_t MaxEncodedSize(size_t elements) const override;
  double CompressionRate(size_t elements) const override;

 private:
  float threshold_;
};

// OSS TernGrad: single-threaded, materializes the quantized integers in a
// temporary vector before a second per-element packing pass.
class OssTernGradCompressor : public Compressor {
 public:
  explicit OssTernGradCompressor(const CompressorParams& params)
      : bitwidth_(params.bitwidth), seed_(params.seed) {}
  std::string_view name() const override { return "oss-terngrad"; }
  bool is_sparse() const override { return false; }
  StatusOr<size_t> EncodeInto(std::span<const float> gradient,
                              std::span<uint8_t> out) const override;
  Status Decode(const ByteBuffer& in, std::span<float> out) const override;
  StatusOr<size_t> EncodedElementCount(const ByteBuffer& in) const override;
  size_t MaxEncodedSize(size_t elements) const override;
  double CompressionRate(size_t elements) const override;

 private:
  unsigned bitwidth_;
  uint64_t seed_;
};

// OSS DGC: exact top-k via a full O(n log n) sort of (magnitude, index)
// pairs — the approach in the Horovod DGC implementation.
class OssDgcCompressor : public Compressor {
 public:
  explicit OssDgcCompressor(const CompressorParams& params)
      : ratio_(params.sparsity_ratio) {}
  std::string_view name() const override { return "oss-dgc"; }
  bool is_sparse() const override { return true; }
  StatusOr<size_t> EncodeInto(std::span<const float> gradient,
                              std::span<uint8_t> out) const override;
  Status Decode(const ByteBuffer& in, std::span<float> out) const override;
  StatusOr<size_t> EncodedElementCount(const ByteBuffer& in) const override;
  size_t MaxEncodedSize(size_t elements) const override;
  double CompressionRate(size_t elements) const override;

 private:
  double ratio_;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_COMPRESS_OSS_BASELINES_H_
