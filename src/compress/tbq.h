// TBQ — threshold binary quantization (Strom, 2015).
//
// Elements whose magnitude exceeds a fixed threshold tau are transmitted as
// +tau or -tau; everything else becomes zero (and is carried in the error
// residual by the ErrorFeedback wrapper, per the original algorithm). Each
// element costs 2 bits: {0 -> 0, 1 -> +tau, 2 -> -tau}.
//
// Encoded layout:
//   uint32 count | float threshold | ceil(count/4) code bytes (2 bits each)
#ifndef HIPRESS_SRC_COMPRESS_TBQ_H_
#define HIPRESS_SRC_COMPRESS_TBQ_H_

#include "src/compress/compressor.h"

namespace hipress {

class TbqCompressor : public Compressor {
 public:
  explicit TbqCompressor(const CompressorParams& params)
      : threshold_(params.threshold) {}

  std::string_view name() const override { return "tbq"; }
  bool is_sparse() const override { return false; }

  StatusOr<size_t> EncodeInto(std::span<const float> gradient,
                              std::span<uint8_t> out) const override;
  Status Decode(const ByteBuffer& in, std::span<float> out) const override;
  Status DecodeAdd(const ByteBuffer& in, std::span<float> accum) const override;
  StatusOr<size_t> EncodedElementCount(const ByteBuffer& in) const override;
  size_t MaxEncodedSize(size_t elements) const override;
  double CompressionRate(size_t elements) const override;

  float threshold() const { return threshold_; }

 private:
  float threshold_;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_COMPRESS_TBQ_H_
