#include "src/compress/compressor.h"

#include "src/common/buffer_pool.h"

namespace hipress {

Status Compressor::Encode(std::span<const float> gradient,
                          ByteBuffer* out) const {
  out->Resize(MaxEncodedSize(gradient.size()));
  StatusOr<size_t> written = EncodeInto(gradient, out->span());
  if (!written.ok() &&
      written.status().code() == StatusCode::kResourceExhausted) {
    // Threshold sparsifiers can exceed their expected bound on adversarial
    // inputs; retry once at the codec's hard worst case.
    const size_t worst = WorstCaseEncodedSize(gradient.size());
    if (worst > out->size()) {
      out->Resize(worst);
      written = EncodeInto(gradient, out->span());
    }
  }
  RETURN_IF_ERROR(written.status());
  out->Resize(*written);
  return OkStatus();
}

Status Compressor::DecodeAdd(const ByteBuffer& in,
                             std::span<float> accum) const {
  // Generic fallback: decode into pooled scratch, then add. Codecs override
  // this with a single-pass fused version where profitable.
  Workspace ws;
  PooledFloats scratch = ws.zeroed_floats(accum.size());
  RETURN_IF_ERROR(Decode(in, scratch.span()));
  for (size_t i = 0; i < accum.size(); ++i) {
    accum[i] += scratch[i];
  }
  return OkStatus();
}

float HashUniform(uint64_t seed, uint64_t index) {
  // SplitMix64-style finalizer over (seed ^ index-mix).
  uint64_t z = seed + index * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<float>(z >> 40) * 0x1.0p-24f;
}

}  // namespace hipress
