#include "src/compress/compressor.h"

#include <vector>

namespace hipress {

Status Compressor::DecodeAdd(const ByteBuffer& in,
                             std::span<float> accum) const {
  // Generic fallback: decode into scratch, then add. Codecs override this
  // with a single-pass fused version where profitable.
  std::vector<float> scratch(accum.size(), 0.0f);
  RETURN_IF_ERROR(Decode(in, std::span<float>(scratch)));
  for (size_t i = 0; i < accum.size(); ++i) {
    accum[i] += scratch[i];
  }
  return OkStatus();
}

float HashUniform(uint64_t seed, uint64_t index) {
  // SplitMix64-style finalizer over (seed ^ index-mix).
  uint64_t z = seed + index * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<float>(z >> 40) * 0x1.0p-24f;
}

}  // namespace hipress
