#include "src/compress/simd_kernels.h"

#include <cstring>

#include "src/common/bitops.h"
#include "src/common/logging.h"
#include "src/compress/fp16.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(HIPRESS_FORCE_SCALAR)
#define HIPRESS_SIMD_X86 1
#include <immintrin.h>
#define HIPRESS_TARGET_AVX2 __attribute__((target("avx2,fma,f16c")))
#define HIPRESS_TARGET_AVX512 \
  __attribute__((target("avx512f,avx512bw,avx512vl,f16c")))
#endif

namespace hipress::simd {
namespace {

// Interleaves an 8-bit mask into the even bit positions of a 16-bit word
// (bit i -> bit 2i); OR a second spread mask shifted left by one to build
// the 2-bit-per-element TBQ group.
constexpr uint32_t Spread8(uint32_t v) {
  v &= 0xffu;
  v = (v | (v << 4)) & 0x0f0fu;
  v = (v | (v << 2)) & 0x3333u;
  v = (v | (v << 1)) & 0x5555u;
  return v;
}

constexpr uint32_t Spread16(uint32_t v) {
  v &= 0xffffu;
  v = (v | (v << 8)) & 0x00ff00ffu;
  v = (v | (v << 4)) & 0x0f0f0f0fu;
  v = (v | (v << 2)) & 0x33333333u;
  v = (v | (v << 1)) & 0x55555555u;
  return v;
}

// --------------------------------------------------------- scalar variants
//
// The scalar variants are the semantic reference: they execute the exact
// lane schedule the vector variants implement, so every tier produces the
// same bits (docs/KERNELS.md "Determinism" section).

SignStats OnebitSignStatsScalar(const float* x, size_t n) {
  double pos[8] = {0.0};
  double neg[8] = {0.0};
  uint64_t cnt[8] = {0};
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    for (size_t j = 0; j < 8; ++j) {
      const double v = static_cast<double>(x[i + j]);
      if (x[i + j] >= 0.0f) {
        pos[j] += v;
        ++cnt[j];
      } else {
        neg[j] += v;
      }
    }
  }
  for (size_t j = 0; j < n - n8; ++j) {
    const double v = static_cast<double>(x[n8 + j]);
    if (x[n8 + j] >= 0.0f) {
      pos[j] += v;
      ++cnt[j];
    } else {
      neg[j] += v;
    }
  }
  SignStats stats;
  for (size_t j = 0; j < 8; ++j) {
    stats.pos_sum += pos[j];
    stats.neg_sum += neg[j];
    stats.pos_count += cnt[j];
  }
  return stats;
}

void OnebitPackSignsScalar(const float* x, size_t n, uint8_t* out) {
  const size_t num_bytes = PackedBytes(n, 1);
  for (size_t b = 0; b < num_bytes; ++b) {
    const size_t base = b * 8;
    const size_t limit = n - base < 8 ? n - base : 8;
    uint8_t byte = 0;
    for (size_t i = 0; i < limit; ++i) {
      if (x[base + i] >= 0.0f) {
        byte |= static_cast<uint8_t>(1u << i);
      }
    }
    out[b] = byte;
  }
}

template <bool kAccumulate>
void OnebitUnpackScalar(const uint8_t* packed, size_t n, float neg, float pos,
                        float* out) {
  for (size_t i = 0; i < n; ++i) {
    const float v = ((packed[i >> 3] >> (i & 7)) & 1u) ? pos : neg;
    if constexpr (kAccumulate) {
      out[i] += v;
    } else {
      out[i] = v;
    }
  }
}

void TbqPackCodesScalar(const float* x, size_t n, float tau, uint8_t* out) {
  const float ntau = -tau;
  const size_t num_bytes = PackedBytes(n, 2);
  for (size_t b = 0; b < num_bytes; ++b) {
    const size_t base = b * 4;
    const size_t limit = n - base < 4 ? n - base : 4;
    uint8_t byte = 0;
    for (size_t i = 0; i < limit; ++i) {
      const float v = x[base + i];
      uint8_t code = 0;
      if (v > tau) {
        code = 1;
      } else if (v < ntau) {
        code = 2;
      }
      byte |= static_cast<uint8_t>(code << (2 * i));
    }
    out[b] = byte;
  }
}

template <bool kAccumulate>
void TbqUnpackScalar(const uint8_t* packed, size_t n, float tau, float* out) {
  const float ntau = -tau;
  for (size_t i = 0; i < n; ++i) {
    const uint8_t code = (packed[i >> 2] >> (2 * (i & 3))) & 3u;
    const float v = code == 1 ? tau : (code == 2 ? ntau : 0.0f);
    if constexpr (kAccumulate) {
      out[i] += v;
    } else {
      out[i] = v;
    }
  }
}

void Fp16EncodeScalar(const float* x, size_t n, uint16_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = FloatToHalf(x[i]);
  }
}

template <bool kAccumulate>
void Fp16DecodeScalar(const uint16_t* halves, size_t n, float* out) {
  for (size_t i = 0; i < n; ++i) {
    if constexpr (kAccumulate) {
      out[i] += HalfToFloat(halves[i]);
    } else {
      out[i] = HalfToFloat(halves[i]);
    }
  }
}

#ifdef HIPRESS_SIMD_X86

// ----------------------------------------------------------- AVX2 variants

HIPRESS_TARGET_AVX2 SignStats OnebitSignStatsAvx2(const float* x, size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  __m256d pos_lo = zero, pos_hi = zero, neg_lo = zero, neg_hi = zero;
  __m256i cnt_lo = _mm256_setzero_si256(), cnt_hi = _mm256_setzero_si256();
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256d dlo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
    const __m256d dhi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
    const __m256d ge_lo = _mm256_cmp_pd(dlo, zero, _CMP_GE_OQ);
    const __m256d ge_hi = _mm256_cmp_pd(dhi, zero, _CMP_GE_OQ);
    pos_lo = _mm256_add_pd(pos_lo, _mm256_and_pd(ge_lo, dlo));
    pos_hi = _mm256_add_pd(pos_hi, _mm256_and_pd(ge_hi, dhi));
    neg_lo = _mm256_add_pd(neg_lo, _mm256_andnot_pd(ge_lo, dlo));
    neg_hi = _mm256_add_pd(neg_hi, _mm256_andnot_pd(ge_hi, dhi));
    // Comparison masks are all-ones (-1); subtracting increments the count.
    cnt_lo = _mm256_sub_epi64(cnt_lo, _mm256_castpd_si256(ge_lo));
    cnt_hi = _mm256_sub_epi64(cnt_hi, _mm256_castpd_si256(ge_hi));
  }
  alignas(32) double pos[8], neg[8];
  alignas(32) uint64_t cnt[8];
  _mm256_store_pd(pos, pos_lo);
  _mm256_store_pd(pos + 4, pos_hi);
  _mm256_store_pd(neg, neg_lo);
  _mm256_store_pd(neg + 4, neg_hi);
  _mm256_store_si256(reinterpret_cast<__m256i*>(cnt), cnt_lo);
  _mm256_store_si256(reinterpret_cast<__m256i*>(cnt + 4), cnt_hi);
  for (size_t j = 0; j < n - n8; ++j) {
    const double v = static_cast<double>(x[n8 + j]);
    if (x[n8 + j] >= 0.0f) {
      pos[j] += v;
      ++cnt[j];
    } else {
      neg[j] += v;
    }
  }
  SignStats stats;
  for (size_t j = 0; j < 8; ++j) {
    stats.pos_sum += pos[j];
    stats.neg_sum += neg[j];
    stats.pos_count += cnt[j];
  }
  return stats;
}

HIPRESS_TARGET_AVX2 void OnebitPackSignsAvx2(const float* x, size_t n,
                                             uint8_t* out) {
  const __m256 zero = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const int mask = _mm256_movemask_ps(_mm256_cmp_ps(v, zero, _CMP_GE_OQ));
    out[i >> 3] = static_cast<uint8_t>(mask);
  }
  if (i < n) {
    OnebitPackSignsScalar(x + i, n - i, out + (i >> 3));
  }
}

template <bool kAccumulate>
HIPRESS_TARGET_AVX2 void OnebitUnpackAvx2(const uint8_t* packed, size_t n,
                                          float neg, float pos, float* out) {
  const __m256i bit = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  const __m256 posv = _mm256_set1_ps(pos);
  const __m256 negv = _mm256_set1_ps(neg);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i bits = _mm256_set1_epi32(packed[i >> 3]);
    const __m256i sel =
        _mm256_cmpeq_epi32(_mm256_and_si256(bits, bit), bit);
    const __m256 v =
        _mm256_blendv_ps(negv, posv, _mm256_castsi256_ps(sel));
    if constexpr (kAccumulate) {
      _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(out + i), v));
    } else {
      _mm256_storeu_ps(out + i, v);
    }
  }
  if (i < n) {
    OnebitUnpackScalar<kAccumulate>(packed + (i >> 3), n - i, neg, pos,
                                    out + i);
  }
}

HIPRESS_TARGET_AVX2 void TbqPackCodesAvx2(const float* x, size_t n, float tau,
                                          uint8_t* out) {
  const __m256 tauv = _mm256_set1_ps(tau);
  const __m256 ntauv = _mm256_set1_ps(-tau);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const uint32_t plus = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_cmp_ps(v, tauv, _CMP_GT_OQ)));
    const uint32_t minus = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_cmp_ps(v, ntauv, _CMP_LT_OQ)));
    const uint32_t group = Spread8(plus) | (Spread8(minus) << 1);
    out[i >> 2] = static_cast<uint8_t>(group);
    out[(i >> 2) + 1] = static_cast<uint8_t>(group >> 8);
  }
  if (i < n) {
    TbqPackCodesScalar(x + i, n - i, tau, out + (i >> 2));
  }
}

template <bool kAccumulate>
HIPRESS_TARGET_AVX2 void TbqUnpackAvx2(const uint8_t* packed, size_t n,
                                       float tau, float* out) {
  const __m256i shifts = _mm256_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14);
  const __m256i three = _mm256_set1_epi32(3);
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i two = _mm256_set1_epi32(2);
  const __m256 tauv = _mm256_set1_ps(tau);
  const __m256 ntauv = _mm256_set1_ps(-tau);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const uint32_t word = static_cast<uint32_t>(packed[i >> 2]) |
                          (static_cast<uint32_t>(packed[(i >> 2) + 1]) << 8);
    const __m256i codes = _mm256_and_si256(
        _mm256_srlv_epi32(_mm256_set1_epi32(static_cast<int>(word)), shifts),
        three);
    const __m256 isp =
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(codes, one));
    const __m256 ism =
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(codes, two));
    const __m256 v = _mm256_or_ps(_mm256_and_ps(isp, tauv),
                                  _mm256_and_ps(ism, ntauv));
    if constexpr (kAccumulate) {
      _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(out + i), v));
    } else {
      _mm256_storeu_ps(out + i, v);
    }
  }
  if (i < n) {
    TbqUnpackScalar<kAccumulate>(packed + (i >> 2), n - i, tau, out + i);
  }
}

HIPRESS_TARGET_AVX2 void Fp16EncodeAvx2(const float* x, size_t n,
                                        uint16_t* out) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h = _mm256_cvtps_ph(
        _mm256_loadu_ps(x + i), _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), h);
  }
  if (i < n) {
    Fp16EncodeScalar(x + i, n - i, out + i);
  }
}

template <bool kAccumulate>
HIPRESS_TARGET_AVX2 void Fp16DecodeAvx2(const uint16_t* halves, size_t n,
                                        float* out) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(halves + i)));
    if constexpr (kAccumulate) {
      _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(out + i), v));
    } else {
      _mm256_storeu_ps(out + i, v);
    }
  }
  if (i < n) {
    Fp16DecodeScalar<kAccumulate>(halves + i, n - i, out + i);
  }
}

// -------------------------------------------------------- AVX-512 variants

HIPRESS_TARGET_AVX512 SignStats OnebitSignStatsAvx512(const float* x,
                                                      size_t n) {
  // Same 8-lane schedule as scalar/AVX2: one zmm of 8 doubles per step.
  const __m512d zero = _mm512_setzero_pd();
  __m512d pos_acc = zero, neg_acc = zero;
  __m512i cnt_acc = _mm512_setzero_si512();
  const __m512i one64 = _mm512_set1_epi64(1);
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    const __m512d d = _mm512_cvtps_pd(_mm256_loadu_ps(x + i));
    const __mmask8 ge = _mm512_cmp_pd_mask(d, zero, _CMP_GE_OQ);
    pos_acc = _mm512_add_pd(pos_acc, _mm512_maskz_mov_pd(ge, d));
    neg_acc = _mm512_add_pd(
        neg_acc, _mm512_maskz_mov_pd(static_cast<__mmask8>(~ge), d));
    cnt_acc = _mm512_add_epi64(cnt_acc, _mm512_maskz_mov_epi64(ge, one64));
  }
  alignas(64) double pos[8], neg[8];
  alignas(64) uint64_t cnt[8];
  _mm512_store_pd(pos, pos_acc);
  _mm512_store_pd(neg, neg_acc);
  _mm512_store_si512(cnt, cnt_acc);
  for (size_t j = 0; j < n - n8; ++j) {
    const double v = static_cast<double>(x[n8 + j]);
    if (x[n8 + j] >= 0.0f) {
      pos[j] += v;
      ++cnt[j];
    } else {
      neg[j] += v;
    }
  }
  SignStats stats;
  for (size_t j = 0; j < 8; ++j) {
    stats.pos_sum += pos[j];
    stats.neg_sum += neg[j];
    stats.pos_count += cnt[j];
  }
  return stats;
}

HIPRESS_TARGET_AVX512 void OnebitPackSignsAvx512(const float* x, size_t n,
                                                 uint8_t* out) {
  const __m512 zero = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __mmask16 m =
        _mm512_cmp_ps_mask(_mm512_loadu_ps(x + i), zero, _CMP_GE_OQ);
    const uint16_t bits = static_cast<uint16_t>(m);
    out[i >> 3] = static_cast<uint8_t>(bits);
    out[(i >> 3) + 1] = static_cast<uint8_t>(bits >> 8);
  }
  if (i < n) {
    OnebitPackSignsScalar(x + i, n - i, out + (i >> 3));
  }
}

template <bool kAccumulate>
HIPRESS_TARGET_AVX512 void OnebitUnpackAvx512(const uint8_t* packed, size_t n,
                                              float neg, float pos,
                                              float* out) {
  const __m512 posv = _mm512_set1_ps(pos);
  const __m512 negv = _mm512_set1_ps(neg);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __mmask16 m = static_cast<__mmask16>(
        static_cast<uint32_t>(packed[i >> 3]) |
        (static_cast<uint32_t>(packed[(i >> 3) + 1]) << 8));
    const __m512 v = _mm512_mask_blend_ps(m, negv, posv);
    if constexpr (kAccumulate) {
      _mm512_storeu_ps(out + i, _mm512_add_ps(_mm512_loadu_ps(out + i), v));
    } else {
      _mm512_storeu_ps(out + i, v);
    }
  }
  if (i < n) {
    OnebitUnpackScalar<kAccumulate>(packed + (i >> 3), n - i, neg, pos,
                                    out + i);
  }
}

HIPRESS_TARGET_AVX512 void TbqPackCodesAvx512(const float* x, size_t n,
                                              float tau, uint8_t* out) {
  const __m512 tauv = _mm512_set1_ps(tau);
  const __m512 ntauv = _mm512_set1_ps(-tau);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 v = _mm512_loadu_ps(x + i);
    const uint32_t plus = _mm512_cmp_ps_mask(v, tauv, _CMP_GT_OQ);
    const uint32_t minus = _mm512_cmp_ps_mask(v, ntauv, _CMP_LT_OQ);
    const uint32_t group = Spread16(plus) | (Spread16(minus) << 1);
    std::memcpy(out + (i >> 2), &group, sizeof(group));
  }
  if (i < n) {
    TbqPackCodesScalar(x + i, n - i, tau, out + (i >> 2));
  }
}

template <bool kAccumulate>
HIPRESS_TARGET_AVX512 void TbqUnpackAvx512(const uint8_t* packed, size_t n,
                                           float tau, float* out) {
  const __m512i shifts = _mm512_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14, 16, 18,
                                           20, 22, 24, 26, 28, 30);
  const __m512i three = _mm512_set1_epi32(3);
  const __m512i one = _mm512_set1_epi32(1);
  const __m512i two = _mm512_set1_epi32(2);
  const __m512 tauv = _mm512_set1_ps(tau);
  const __m512 ntauv = _mm512_set1_ps(-tau);
  const __m512 zerov = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    uint32_t group;
    std::memcpy(&group, packed + (i >> 2), sizeof(group));
    const __m512i codes = _mm512_and_si512(
        _mm512_srlv_epi32(_mm512_set1_epi32(static_cast<int>(group)), shifts),
        three);
    const __mmask16 isp = _mm512_cmpeq_epi32_mask(codes, one);
    const __mmask16 ism = _mm512_cmpeq_epi32_mask(codes, two);
    __m512 v = _mm512_mask_blend_ps(isp, zerov, tauv);
    v = _mm512_mask_blend_ps(ism, v, ntauv);
    if constexpr (kAccumulate) {
      _mm512_storeu_ps(out + i, _mm512_add_ps(_mm512_loadu_ps(out + i), v));
    } else {
      _mm512_storeu_ps(out + i, v);
    }
  }
  if (i < n) {
    TbqUnpackScalar<kAccumulate>(packed + (i >> 2), n - i, tau, out + i);
  }
}

HIPRESS_TARGET_AVX512 void Fp16EncodeAvx512(const float* x, size_t n,
                                            uint16_t* out) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i h = _mm512_cvtps_ph(
        _mm512_loadu_ps(x + i), _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), h);
  }
  if (i < n) {
    Fp16EncodeScalar(x + i, n - i, out + i);
  }
}

template <bool kAccumulate>
HIPRESS_TARGET_AVX512 void Fp16DecodeAvx512(const uint16_t* halves, size_t n,
                                            float* out) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 v = _mm512_cvtph_ps(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(halves + i)));
    if constexpr (kAccumulate) {
      _mm512_storeu_ps(out + i, _mm512_add_ps(_mm512_loadu_ps(out + i), v));
    } else {
      _mm512_storeu_ps(out + i, v);
    }
  }
  if (i < n) {
    Fp16DecodeScalar<kAccumulate>(halves + i, n - i, out + i);
  }
}

#endif  // HIPRESS_SIMD_X86

}  // namespace

// ------------------------------------------------------------- dispatchers

SignStats OnebitSignStats(const float* x, size_t n) {
#ifdef HIPRESS_SIMD_X86
  switch (ActiveSimdTier()) {
    case SimdTier::kAvx512:
      return OnebitSignStatsAvx512(x, n);
    case SimdTier::kAvx2:
      return OnebitSignStatsAvx2(x, n);
    case SimdTier::kScalar:
      break;
  }
#endif
  return OnebitSignStatsScalar(x, n);
}

void OnebitPackSigns(const float* x, size_t n, uint8_t* out,
                     size_t out_bytes) {
  CHECK_GE(out_bytes, PackedBytes(n, 1))
      << "onebit pack: misreported output capacity";
#ifdef HIPRESS_SIMD_X86
  switch (ActiveSimdTier()) {
    case SimdTier::kAvx512:
      return OnebitPackSignsAvx512(x, n, out);
    case SimdTier::kAvx2:
      return OnebitPackSignsAvx2(x, n, out);
    case SimdTier::kScalar:
      break;
  }
#endif
  OnebitPackSignsScalar(x, n, out);
}

void OnebitUnpackSigns(const uint8_t* packed, size_t n, float neg, float pos,
                       float* out) {
#ifdef HIPRESS_SIMD_X86
  switch (ActiveSimdTier()) {
    case SimdTier::kAvx512:
      return OnebitUnpackAvx512<false>(packed, n, neg, pos, out);
    case SimdTier::kAvx2:
      return OnebitUnpackAvx2<false>(packed, n, neg, pos, out);
    case SimdTier::kScalar:
      break;
  }
#endif
  OnebitUnpackScalar<false>(packed, n, neg, pos, out);
}

void OnebitUnpackSignsAdd(const uint8_t* packed, size_t n, float neg,
                          float pos, float* accum) {
#ifdef HIPRESS_SIMD_X86
  switch (ActiveSimdTier()) {
    case SimdTier::kAvx512:
      return OnebitUnpackAvx512<true>(packed, n, neg, pos, accum);
    case SimdTier::kAvx2:
      return OnebitUnpackAvx2<true>(packed, n, neg, pos, accum);
    case SimdTier::kScalar:
      break;
  }
#endif
  OnebitUnpackScalar<true>(packed, n, neg, pos, accum);
}

void TbqPackCodes(const float* x, size_t n, float tau, uint8_t* out,
                  size_t out_bytes) {
  CHECK_GE(out_bytes, PackedBytes(n, 2))
      << "tbq pack: misreported output capacity";
#ifdef HIPRESS_SIMD_X86
  switch (ActiveSimdTier()) {
    case SimdTier::kAvx512:
      return TbqPackCodesAvx512(x, n, tau, out);
    case SimdTier::kAvx2:
      return TbqPackCodesAvx2(x, n, tau, out);
    case SimdTier::kScalar:
      break;
  }
#endif
  TbqPackCodesScalar(x, n, tau, out);
}

void TbqUnpackCodes(const uint8_t* packed, size_t n, float tau, float* out) {
#ifdef HIPRESS_SIMD_X86
  switch (ActiveSimdTier()) {
    case SimdTier::kAvx512:
      return TbqUnpackAvx512<false>(packed, n, tau, out);
    case SimdTier::kAvx2:
      return TbqUnpackAvx2<false>(packed, n, tau, out);
    case SimdTier::kScalar:
      break;
  }
#endif
  TbqUnpackScalar<false>(packed, n, tau, out);
}

void TbqUnpackCodesAdd(const uint8_t* packed, size_t n, float tau,
                       float* accum) {
#ifdef HIPRESS_SIMD_X86
  switch (ActiveSimdTier()) {
    case SimdTier::kAvx512:
      return TbqUnpackAvx512<true>(packed, n, tau, accum);
    case SimdTier::kAvx2:
      return TbqUnpackAvx2<true>(packed, n, tau, accum);
    case SimdTier::kScalar:
      break;
  }
#endif
  TbqUnpackScalar<true>(packed, n, tau, accum);
}

void Fp16Encode(const float* x, size_t n, uint16_t* out,
                size_t out_capacity) {
  CHECK_GE(out_capacity, n) << "fp16 encode: misreported output capacity";
#ifdef HIPRESS_SIMD_X86
  switch (ActiveSimdTier()) {
    case SimdTier::kAvx512:
      return Fp16EncodeAvx512(x, n, out);
    case SimdTier::kAvx2:
      return Fp16EncodeAvx2(x, n, out);
    case SimdTier::kScalar:
      break;
  }
#endif
  Fp16EncodeScalar(x, n, out);
}

void Fp16Decode(const uint16_t* halves, size_t n, float* out) {
#ifdef HIPRESS_SIMD_X86
  switch (ActiveSimdTier()) {
    case SimdTier::kAvx512:
      return Fp16DecodeAvx512<false>(halves, n, out);
    case SimdTier::kAvx2:
      return Fp16DecodeAvx2<false>(halves, n, out);
    case SimdTier::kScalar:
      break;
  }
#endif
  Fp16DecodeScalar<false>(halves, n, out);
}

void Fp16DecodeAdd(const uint16_t* halves, size_t n, float* accum) {
#ifdef HIPRESS_SIMD_X86
  switch (ActiveSimdTier()) {
    case SimdTier::kAvx512:
      return Fp16DecodeAvx512<true>(halves, n, accum);
    case SimdTier::kAvx2:
      return Fp16DecodeAvx2<true>(halves, n, accum);
    case SimdTier::kScalar:
      break;
  }
#endif
  Fp16DecodeScalar<true>(halves, n, accum);
}

}  // namespace hipress::simd
