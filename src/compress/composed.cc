#include "src/compress/composed.h"

#include <cstring>
#include <functional>

#include "src/common/buffer_pool.h"
#include "src/compress/registry.h"
#include "src/compress/sparse_format.h"

namespace hipress {

ComposedCompressor::ComposedCompressor(std::unique_ptr<Compressor> sparsifier,
                                       std::unique_ptr<Compressor> quantizer)
    : sparsifier_(std::move(sparsifier)), quantizer_(std::move(quantizer)) {
  name_ = std::string(sparsifier_->name()) + "+" +
          std::string(quantizer_->name());
}

StatusOr<std::unique_ptr<ComposedCompressor>> ComposedCompressor::Create(
    std::unique_ptr<Compressor> sparsifier,
    std::unique_ptr<Compressor> quantizer) {
  if (sparsifier == nullptr || quantizer == nullptr) {
    return InvalidArgumentError("composed: null codec");
  }
  if (!sparsifier->is_sparse()) {
    return InvalidArgumentError(
        "composed: outer codec must be a sparsifier, got " +
        std::string(sparsifier->name()));
  }
  if (quantizer->is_sparse()) {
    return InvalidArgumentError(
        "composed: inner codec must be dense, got " +
        std::string(quantizer->name()));
  }
  return std::unique_ptr<ComposedCompressor>(new ComposedCompressor(
      std::move(sparsifier), std::move(quantizer)));
}

StatusOr<std::unique_ptr<ComposedCompressor>>
ComposedCompressor::CreateFromNames(const std::string& sparsifier,
                                    const std::string& quantizer,
                                    const CompressorParams& params) {
  ASSIGN_OR_RETURN(auto outer, CreateCompressor(sparsifier, params));
  ASSIGN_OR_RETURN(auto inner, CreateCompressor(quantizer, params));
  return Create(std::move(outer), std::move(inner));
}

StatusOr<size_t> ComposedCompressor::EncodeInto(
    std::span<const float> gradient, std::span<uint8_t> out) const {
  // Pooled stage buffers: both shrink back into the pool on return.
  ByteBuffer sparse;
  RETURN_IF_ERROR(sparsifier_->Encode(gradient, &sparse));
  ASSIGN_OR_RETURN(SparseView view, SparseParse(sparse));

  ByteBuffer inner;
  RETURN_IF_ERROR(quantizer_->Encode(
      std::span<const float>(view.values, view.k), &inner));

  const size_t needed = 2 * sizeof(uint32_t) + view.k * sizeof(uint32_t) +
                        sizeof(uint32_t) + inner.size();
  if (out.size() < needed) {
    return ResourceExhaustedError("composed: output capacity too small");
  }
  uint8_t* bytes = out.data();
  size_t write = 0;
  std::memcpy(bytes + write, &view.count, sizeof(uint32_t));
  write += sizeof(uint32_t);
  std::memcpy(bytes + write, &view.k, sizeof(uint32_t));
  write += sizeof(uint32_t);
  std::memcpy(bytes + write, view.indices, view.k * sizeof(uint32_t));
  write += view.k * sizeof(uint32_t);
  const uint32_t inner_size = static_cast<uint32_t>(inner.size());
  std::memcpy(bytes + write, &inner_size, sizeof(inner_size));
  write += sizeof(inner_size);
  std::memcpy(bytes + write, inner.data(), inner.size());
  return needed;
}

Status ComposedCompressor::DecodeEach(
    const ByteBuffer& in, size_t expected_elements,
    const std::function<void(uint32_t, float)>& emit) const {
  if (in.size() < 3 * sizeof(uint32_t)) {
    return InvalidArgumentError("composed: buffer shorter than header");
  }
  size_t offset = 0;
  const uint32_t count = in.ReadAt<uint32_t>(offset);
  const uint32_t k = in.ReadAt<uint32_t>(offset);
  if (expected_elements != count) {
    return InvalidArgumentError("composed: output size mismatch");
  }
  if (k > count) {
    return InvalidArgumentError("composed: k exceeds element count");
  }
  if (in.size() < 2 * sizeof(uint32_t) + k * sizeof(uint32_t) +
                      sizeof(uint32_t)) {
    return InvalidArgumentError("composed: truncated index block");
  }
  const auto* indices =
      reinterpret_cast<const uint32_t*>(in.data() + offset);
  offset += k * sizeof(uint32_t);
  const uint32_t inner_size = in.ReadAt<uint32_t>(offset);
  if (in.size() < offset + inner_size) {
    return InvalidArgumentError("composed: truncated inner payload");
  }
  ByteBuffer inner(std::span<const uint8_t>(in.data() + offset, inner_size));
  Workspace ws;
  PooledFloats values = ws.zeroed_floats(k);
  RETURN_IF_ERROR(quantizer_->Decode(inner, values.span()));
  for (uint32_t i = 0; i < k; ++i) {
    if (indices[i] >= count) {
      return InvalidArgumentError("composed: index out of range");
    }
    emit(indices[i], values[i]);
  }
  return OkStatus();
}

Status ComposedCompressor::Decode(const ByteBuffer& in,
                                  std::span<float> out) const {
  std::fill(out.begin(), out.end(), 0.0f);
  return DecodeEach(in, out.size(),
                    [&out](uint32_t index, float value) {
                      out[index] = value;
                    });
}

Status ComposedCompressor::DecodeAdd(const ByteBuffer& in,
                                     std::span<float> accum) const {
  return DecodeEach(in, accum.size(),
                    [&accum](uint32_t index, float value) {
                      accum[index] += value;
                    });
}

StatusOr<size_t> ComposedCompressor::EncodedElementCount(
    const ByteBuffer& in) const {
  if (in.size() < sizeof(uint32_t)) {
    return InvalidArgumentError("composed: buffer shorter than header");
  }
  size_t offset = 0;
  return static_cast<size_t>(in.ReadAt<uint32_t>(offset));
}

size_t ComposedCompressor::MaxEncodedSize(size_t elements) const {
  // Outer bound on k from the sparsifier's own sizing.
  const size_t outer = sparsifier_->MaxEncodedSize(elements);
  const size_t k = outer >= SparseEncodedSize(0)
                       ? (outer - 2 * sizeof(uint32_t)) /
                             (sizeof(uint32_t) + sizeof(float))
                       : 0;
  return 3 * sizeof(uint32_t) + k * sizeof(uint32_t) +
         quantizer_->MaxEncodedSize(k);
}

size_t ComposedCompressor::WorstCaseEncodedSize(size_t elements) const {
  // The sparsifier may keep every element on adversarial inputs.
  return 3 * sizeof(uint32_t) + elements * sizeof(uint32_t) +
         quantizer_->WorstCaseEncodedSize(elements);
}

double ComposedCompressor::CompressionRate(size_t elements) const {
  if (elements == 0) {
    return 1.0;
  }
  return static_cast<double>(MaxEncodedSize(elements)) /
         static_cast<double>(elements * sizeof(float));
}

}  // namespace hipress
