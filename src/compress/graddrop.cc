#include "src/compress/graddrop.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "src/common/buffer_pool.h"
#include "src/compress/sparse_format.h"

namespace hipress {

StatusOr<size_t> GradDropCompressor::EncodeInto(
    std::span<const float> gradient, std::span<uint8_t> out) const {
  Workspace ws;
  const size_t n = gradient.size();
  if (n == 0) {
    return SparseEncodeInto(0, {}, {}, out);
  }

  // Sample ~1% (at least 1024) magnitudes with a deterministic stride and
  // take the drop threshold at the (1 - ratio) quantile of the sample.
  const size_t sample_size = std::min(n, std::max<size_t>(1024, n / 100));
  const size_t stride = std::max<size_t>(1, n / sample_size);
  PooledFloats sample = ws.floats(0);
  sample.reserve(n / stride + 1);
  for (size_t i = seed_ % stride; i < n; i += stride) {
    sample.push_back(std::abs(gradient[i]));
  }
  size_t keep_in_sample = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(static_cast<double>(sample.size()) * ratio_)));
  keep_in_sample = std::min(keep_in_sample, sample.size());
  std::nth_element(sample.begin(), sample.begin() + (keep_in_sample - 1),
                   sample.end(), std::greater<float>());
  const float threshold = sample[keep_in_sample - 1];

  PooledU32 indices = ws.indices(0);
  PooledFloats values = ws.floats(0);
  indices.reserve(static_cast<size_t>(static_cast<double>(n) * ratio_ * 2) + 8);
  values.reserve(static_cast<size_t>(static_cast<double>(n) * ratio_ * 2) + 8);
  for (size_t i = 0; i < n; ++i) {
    if (std::abs(gradient[i]) >= threshold && gradient[i] != 0.0f) {
      indices.push_back(static_cast<uint32_t>(i));
      values.push_back(gradient[i]);
    }
  }
  return SparseEncodeInto(static_cast<uint32_t>(n), indices.span(),
                          values.span(), out);
}

Status GradDropCompressor::Decode(const ByteBuffer& in,
                                  std::span<float> out) const {
  return SparseDecode(in, out);
}

Status GradDropCompressor::DecodeAdd(const ByteBuffer& in,
                                     std::span<float> accum) const {
  return SparseDecodeAdd(in, accum);
}

StatusOr<size_t> GradDropCompressor::EncodedElementCount(
    const ByteBuffer& in) const {
  ASSIGN_OR_RETURN(SparseView view, SparseParse(in));
  return static_cast<size_t>(view.count);
}

size_t GradDropCompressor::MaxEncodedSize(size_t elements) const {
  // Thresholding can overshoot the target fraction; size for 2x slack.
  const size_t expected = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(static_cast<double>(elements) * ratio_ * 2.0)));
  return SparseEncodedSize(std::min(elements, expected));
}

size_t GradDropCompressor::WorstCaseEncodedSize(size_t elements) const {
  // An adversarial distribution can put every element above the sampled
  // threshold; the hard bound keeps them all.
  return SparseEncodedSize(elements);
}

double GradDropCompressor::CompressionRate(size_t elements) const {
  if (elements == 0) {
    return 1.0;
  }
  // Expected (not worst-case) rate for the cost model.
  const size_t expected = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(static_cast<double>(elements) * ratio_)));
  return static_cast<double>(SparseEncodedSize(expected)) /
         static_cast<double>(elements * sizeof(float));
}

}  // namespace hipress
