#include "src/compress/adacomp.h"

#include <algorithm>
#include <cmath>

#include "src/common/buffer_pool.h"
#include "src/compress/sparse_format.h"

namespace hipress {

StatusOr<size_t> AdaCompCompressor::EncodeInto(std::span<const float> gradient,
                                               std::span<uint8_t> out) const {
  Workspace ws;
  const size_t n = gradient.size();
  PooledU32 indices = ws.indices(0);
  PooledFloats values = ws.floats(0);
  // Rough reservation: gaussian bins keep a few elements each.
  indices.reserve(n / 64 + 8);
  values.reserve(n / 64 + 8);

  for (size_t begin = 0; begin < n; begin += kBinSize) {
    const size_t end = std::min(n, begin + kBinSize);
    float local_max = 0.0f;
    for (size_t i = begin; i < end; ++i) {
      local_max = std::max(local_max, std::abs(gradient[i]));
    }
    if (local_max == 0.0f) {
      continue;  // all-zero bin sends nothing
    }
    const float threshold = selectivity_ * local_max;
    for (size_t i = begin; i < end; ++i) {
      if (std::abs(gradient[i]) >= threshold) {
        indices.push_back(static_cast<uint32_t>(i));
        values.push_back(gradient[i]);
      }
    }
  }
  return SparseEncodeInto(static_cast<uint32_t>(n), indices.span(),
                          values.span(), out);
}

Status AdaCompCompressor::Decode(const ByteBuffer& in,
                                 std::span<float> out) const {
  return SparseDecode(in, out);
}

Status AdaCompCompressor::DecodeAdd(const ByteBuffer& in,
                                    std::span<float> accum) const {
  return SparseDecodeAdd(in, accum);
}

StatusOr<size_t> AdaCompCompressor::EncodedElementCount(
    const ByteBuffer& in) const {
  ASSIGN_OR_RETURN(SparseView view, SparseParse(in));
  return static_cast<size_t>(view.count);
}

size_t AdaCompCompressor::MaxEncodedSize(size_t elements) const {
  // Worst case every element ties its bin's maximum; in practice Gaussian
  // bins keep a handful. Size for a conservative 1/8 of the elements.
  const size_t expected = std::max<size_t>(1, elements / 8);
  return SparseEncodedSize(std::min(elements, expected));
}

size_t AdaCompCompressor::WorstCaseEncodedSize(size_t elements) const {
  // Every element can tie its bin's maximum (constant bins); the hard
  // bound keeps them all.
  return SparseEncodedSize(elements);
}

double AdaCompCompressor::CompressionRate(size_t elements) const {
  if (elements == 0) {
    return 1.0;
  }
  // Expected rate for Gaussian-ish gradients: ~2 elements kept per bin of
  // 512 at selectivity 0.9; scale inversely with selectivity.
  const double keep_per_bin = 2.0 / std::max(0.1f, selectivity_);
  const double keep_fraction =
      std::min(1.0, keep_per_bin / static_cast<double>(kBinSize));
  return keep_fraction * 2.0;  // 8 bytes per kept vs 4 per original
}

}  // namespace hipress
