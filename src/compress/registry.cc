#include "src/compress/registry.h"

#include "src/compress/adacomp.h"
#include "src/compress/dgc.h"
#include "src/compress/fp16.h"
#include "src/compress/graddrop.h"
#include "src/compress/onebit.h"
#include "src/compress/oss_baselines.h"
#include "src/compress/tbq.h"
#include "src/compress/terngrad.h"

namespace hipress {
namespace {

template <typename T>
CompressorRegistry::Factory MakeFactory() {
  return [](const CompressorParams& params) {
    return std::make_unique<T>(params);
  };
}

}  // namespace

CompressorRegistry::CompressorRegistry() {
  factories_.emplace_back("onebit", MakeFactory<OnebitCompressor>());
  factories_.emplace_back("fp16", MakeFactory<Fp16Compressor>());
  factories_.emplace_back("tbq", MakeFactory<TbqCompressor>());
  factories_.emplace_back("terngrad", MakeFactory<TernGradCompressor>());
  factories_.emplace_back("dgc", MakeFactory<DgcCompressor>());
  factories_.emplace_back("graddrop", MakeFactory<GradDropCompressor>());
  factories_.emplace_back("adacomp", MakeFactory<AdaCompCompressor>());
  factories_.emplace_back("oss-onebit", MakeFactory<OssOnebitCompressor>());
  factories_.emplace_back("oss-tbq", MakeFactory<OssTbqCompressor>());
  factories_.emplace_back("oss-terngrad",
                          MakeFactory<OssTernGradCompressor>());
  factories_.emplace_back("oss-dgc", MakeFactory<OssDgcCompressor>());
}

CompressorRegistry& CompressorRegistry::Instance() {
  static CompressorRegistry* registry = new CompressorRegistry();
  return *registry;
}

Status CompressorRegistry::Register(const std::string& name, Factory factory) {
  if (Contains(name)) {
    return AlreadyExistsError("compressor already registered: " + name);
  }
  factories_.emplace_back(name, std::move(factory));
  return OkStatus();
}

StatusOr<std::unique_ptr<Compressor>> CompressorRegistry::Create(
    const std::string& name, const CompressorParams& params) const {
  for (const auto& [registered, factory] : factories_) {
    if (registered == name) {
      return factory(params);
    }
  }
  return NotFoundError("unknown compressor: " + name);
}

bool CompressorRegistry::Contains(const std::string& name) const {
  for (const auto& [registered, factory] : factories_) {
    if (registered == name) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> CompressorRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    names.push_back(name);
  }
  return names;
}

StatusOr<std::unique_ptr<Compressor>> CreateCompressor(
    const std::string& name, const CompressorParams& params) {
  return CompressorRegistry::Instance().Create(name, params);
}

}  // namespace hipress
