// DGC — Deep Gradient Compression (Lin et al., 2017) top-k sparsification.
//
// Keeps the `sparsity_ratio` fraction of elements with the largest
// magnitudes (paper default 0.1%; Figure 12b sweeps 0.1/1/5%). For large
// gradients the selection threshold is estimated from a deterministic strided
// sample (the original's sampled top-k trick), then refined so exactly
// target-k elements are sent; small gradients use exact selection. Gradient
// clipping / momentum correction from the original recipe are applied by the
// ErrorFeedback wrapper during training.
#ifndef HIPRESS_SRC_COMPRESS_DGC_H_
#define HIPRESS_SRC_COMPRESS_DGC_H_

#include "src/compress/compressor.h"

namespace hipress {

class DgcCompressor : public Compressor {
 public:
  explicit DgcCompressor(const CompressorParams& params)
      : ratio_(params.sparsity_ratio), seed_(params.seed) {}

  std::string_view name() const override { return "dgc"; }
  bool is_sparse() const override { return true; }

  StatusOr<size_t> EncodeInto(std::span<const float> gradient,
                              std::span<uint8_t> out) const override;
  Status Decode(const ByteBuffer& in, std::span<float> out) const override;
  Status DecodeAdd(const ByteBuffer& in, std::span<float> accum) const override;
  StatusOr<size_t> EncodedElementCount(const ByteBuffer& in) const override;
  size_t MaxEncodedSize(size_t elements) const override;
  double CompressionRate(size_t elements) const override;

  // Number of elements DGC keeps for an n-element gradient.
  size_t TargetK(size_t elements) const;

  double ratio() const { return ratio_; }

 private:
  double ratio_;
  uint64_t seed_;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_COMPRESS_DGC_H_
