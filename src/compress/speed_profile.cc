#include "src/compress/speed_profile.h"

namespace hipress {
namespace {

struct BaseSpeed {
  double encode_gbps;  // GB/s of original bytes, CompLL impl on V100
  double decode_gbps;
  double oss_slowdown;  // CompLL / OSS encode speed ratio (Section 4.4)
};

// CompLL-grade V100 throughputs per algorithm.
BaseSpeed BaseFor(std::string_view algorithm) {
  if (algorithm == "onebit") {
    // Two passes (signed means + bit packing) over HBM.
    return BaseSpeed{120.0, 160.0, 1.4};
  }
  if (algorithm == "fp16") {
    // Single pass, pure conversion: the fastest codec.
    return BaseSpeed{200.0, 250.0, 2.0};
  }
  if (algorithm == "tbq") {
    // One thresholding pass; OSS version measured at ~7 GB/s (12x slower).
    return BaseSpeed{80.0, 140.0, 12.0};
  }
  if (algorithm == "terngrad") {
    // Two reduces (min/max) + stochastic map.
    return BaseSpeed{70.0, 130.0, 3.5};
  }
  if (algorithm == "dgc") {
    // Sampling + selection + compaction; OSS is 5.1x slower.
    return BaseSpeed{30.0, 200.0, 5.1};
  }
  if (algorithm == "graddrop") {
    return BaseSpeed{35.0, 200.0, 4.0};
  }
  if (algorithm == "adacomp") {
    // Two passes per bin (local max + selection), cache-friendly.
    return BaseSpeed{45.0, 200.0, 4.0};
  }
  // Unknown / user-registered algorithm: conservative default.
  return BaseSpeed{50.0, 100.0, 4.0};
}

constexpr double kGB = 1e9;
// 1080 Ti : V100 memory bandwidth ratio (484 / 900 GB/s).
constexpr double k1080TiScale = 484.0 / 900.0;
// On-CPU onebit is 35.6x slower than CompLL's GPU kernel (Section 2.5).
constexpr double kCpuSlowdown = 35.6;
// The AVX2/AVX-512 CPU kernels recover most of that gap: bench_kernels
// measures >= 3x scalar encode throughput for the hand-vectorized codecs
// (onebit sign-pack via movemask, TBQ two-plane pack, fp16 cvtps_ph — see
// docs/KERNELS.md), so the SIMD CPU tier sits at 35.6 / 4 ≈ 8.9x below the
// GPU kernel before the PCIe round trip is folded in.
constexpr double kCpuSimdSlowdown = kCpuSlowdown / 4.0;

}  // namespace

CodecSpeed GetCodecSpeed(std::string_view algorithm, CodecImpl impl,
                         GpuPlatform platform) {
  const BaseSpeed base = BaseFor(algorithm);
  double encode_bps = base.encode_gbps * kGB;
  double decode_bps = base.decode_gbps * kGB;
  // Kernel launch + stream sync + CPU-GPU handshake per operator.
  SimTime overhead = FromMicros(25.0);

  switch (impl) {
    case CodecImpl::kCompLL:
      break;
    case CodecImpl::kOss:
      encode_bps /= base.oss_slowdown;
      decode_bps /= base.oss_slowdown;
      overhead = FromMicros(30.0);  // extra memory copies in the OSS path
      break;
    case CodecImpl::kCpu:
      encode_bps /= kCpuSlowdown;
      decode_bps /= kCpuSlowdown;
      // CPU path additionally pays a PCIe round trip for the gradient; fold
      // a 12 GB/s device-to-host copy into the effective throughput.
      encode_bps = 1.0 / (1.0 / encode_bps + 1.0 / 12e9);
      decode_bps = 1.0 / (1.0 / decode_bps + 1.0 / 12e9);
      overhead = FromMicros(50.0);
      break;
    case CodecImpl::kCpuSimd:
      encode_bps /= kCpuSimdSlowdown;
      decode_bps /= kCpuSimdSlowdown;
      // Same PCIe round trip as the scalar CPU path.
      encode_bps = 1.0 / (1.0 / encode_bps + 1.0 / 12e9);
      decode_bps = 1.0 / (1.0 / decode_bps + 1.0 / 12e9);
      overhead = FromMicros(50.0);
      break;
  }
  if (platform == GpuPlatform::k1080Ti && impl != CodecImpl::kCpu &&
      impl != CodecImpl::kCpuSimd) {
    encode_bps *= k1080TiScale;
    decode_bps *= k1080TiScale;
  }

  CodecSpeed speed;
  speed.encode = KernelCost{overhead, encode_bps};
  speed.decode = KernelCost{overhead, decode_bps};
  return speed;
}

KernelCost GetMergeCost(GpuPlatform platform) {
  double bps = 220e9;  // axpy-style kernel, read+read+write over HBM
  if (platform == GpuPlatform::k1080Ti) {
    bps *= k1080TiScale;
  }
  return KernelCost{FromMicros(10.0), bps};
}

double ComputeScale(GpuPlatform platform) {
  switch (platform) {
    case GpuPlatform::kV100:
      return 1.0;
    case GpuPlatform::k1080Ti:
      // fp32 TFLOPS ratio: ~11.3 (1080 Ti) vs ~15.7 (V100), further derated
      // for the V100's tensor-core advantage on DNN kernels.
      return 0.55;
  }
  return 1.0;
}

}  // namespace hipress
