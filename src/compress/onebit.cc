#include "src/compress/onebit.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/common/bitops.h"
#include "src/common/thread_pool.h"
#include "src/compress/simd_kernels.h"

namespace hipress {
namespace {

constexpr size_t kHeaderBytes =
    kCountHeaderBytes + 2 * sizeof(float);  // count, neg_mean, pos_mean
constexpr size_t kParallelGrain = 64 * 1024;

}  // namespace

StatusOr<size_t> OnebitCompressor::EncodeInto(std::span<const float> gradient,
                                              std::span<uint8_t> out) const {
  const size_t n = gradient.size();
  const size_t needed = kHeaderBytes + PackedBytes(n, 1);
  if (out.size() < needed) {
    return ResourceExhaustedError("onebit: output capacity too small");
  }
  uint8_t* bytes = out.data();

  // Pass 1: signed means. One SignStats partial per fixed-size block,
  // computed in parallel (vectorized per block) and merged in block order —
  // the result is independent of thread count and SIMD tier, so encoded
  // bytes are reproducible across machines (docs/KERNELS.md).
  const size_t num_blocks =
      (n + simd::kReduceBlockElements - 1) / simd::kReduceBlockElements;
  std::vector<simd::SignStats> partials(num_blocks);
  ThreadPool::Global().ParallelFor(
      num_blocks, kParallelGrain / simd::kReduceBlockElements + 1,
      [&](size_t block_begin, size_t block_end) {
        for (size_t b = block_begin; b < block_end; ++b) {
          const size_t begin = b * simd::kReduceBlockElements;
          const size_t end =
              std::min(n, begin + simd::kReduceBlockElements);
          partials[b] = simd::OnebitSignStats(gradient.data() + begin,
                                              end - begin);
        }
      });
  simd::SignStats stats;
  for (const simd::SignStats& partial : partials) {
    stats.pos_sum += partial.pos_sum;
    stats.neg_sum += partial.neg_sum;
    stats.pos_count += partial.pos_count;
  }
  const uint64_t neg_count = n - stats.pos_count;
  const float pos_mean =
      stats.pos_count > 0
          ? static_cast<float>(stats.pos_sum /
                               static_cast<double>(stats.pos_count))
          : 0.0f;
  const float neg_mean =
      neg_count > 0 ? static_cast<float>(stats.neg_sum /
                                         static_cast<double>(neg_count))
                    : 0.0f;

  const uint32_t count = static_cast<uint32_t>(n);
  std::memcpy(bytes, &count, sizeof(count));
  std::memcpy(bytes + sizeof(count), &neg_mean, sizeof(neg_mean));
  std::memcpy(bytes + sizeof(count) + sizeof(neg_mean), &pos_mean,
              sizeof(pos_mean));

  // Pass 2: pack sign bits, 8 elements per output byte. Shards are aligned
  // to 8-element groups so no two shards touch the same byte.
  uint8_t* packed = bytes + kHeaderBytes;
  const size_t num_bytes = PackedBytes(n, 1);
  ThreadPool::Global().ParallelFor(
      num_bytes, kParallelGrain / 8, [&](size_t byte_begin, size_t byte_end) {
        const size_t elem_begin = byte_begin * 8;
        const size_t elem_end = std::min(n, byte_end * 8);
        simd::OnebitPackSigns(gradient.data() + elem_begin,
                              elem_end - elem_begin, packed + byte_begin,
                              byte_end - byte_begin);
      });
  return needed;
}

Status OnebitCompressor::Decode(const ByteBuffer& in,
                                std::span<float> out) const {
  if (in.size() < kHeaderBytes) {
    return InvalidArgumentError("onebit: buffer shorter than header");
  }
  size_t offset = 0;
  const uint32_t count = in.ReadAt<uint32_t>(offset);
  const float neg_mean = in.ReadAt<float>(offset);
  const float pos_mean = in.ReadAt<float>(offset);
  if (out.size() != count) {
    return InvalidArgumentError("onebit: output size mismatch");
  }
  if (in.size() < kHeaderBytes + PackedBytes(count, 1)) {
    return InvalidArgumentError("onebit: truncated payload");
  }
  const uint8_t* packed = in.data() + kHeaderBytes;
  ThreadPool::Global().ParallelFor(
      PackedBytes(count, 1), kParallelGrain / 8,
      [&](size_t byte_begin, size_t byte_end) {
        const size_t elem_begin = byte_begin * 8;
        const size_t elem_end = std::min<size_t>(count, byte_end * 8);
        simd::OnebitUnpackSigns(packed + byte_begin, elem_end - elem_begin,
                                neg_mean, pos_mean,
                                out.data() + elem_begin);
      });
  return OkStatus();
}

Status OnebitCompressor::DecodeAdd(const ByteBuffer& in,
                                   std::span<float> accum) const {
  if (in.size() < kHeaderBytes) {
    return InvalidArgumentError("onebit: buffer shorter than header");
  }
  size_t offset = 0;
  const uint32_t count = in.ReadAt<uint32_t>(offset);
  const float neg_mean = in.ReadAt<float>(offset);
  const float pos_mean = in.ReadAt<float>(offset);
  if (accum.size() != count) {
    return InvalidArgumentError("onebit: accumulator size mismatch");
  }
  if (in.size() < kHeaderBytes + PackedBytes(count, 1)) {
    return InvalidArgumentError("onebit: truncated payload");
  }
  const uint8_t* packed = in.data() + kHeaderBytes;
  ThreadPool::Global().ParallelFor(
      PackedBytes(count, 1), kParallelGrain / 8,
      [&](size_t byte_begin, size_t byte_end) {
        const size_t elem_begin = byte_begin * 8;
        const size_t elem_end = std::min<size_t>(count, byte_end * 8);
        simd::OnebitUnpackSignsAdd(packed + byte_begin,
                                   elem_end - elem_begin, neg_mean, pos_mean,
                                   accum.data() + elem_begin);
      });
  return OkStatus();
}

StatusOr<size_t> OnebitCompressor::EncodedElementCount(
    const ByteBuffer& in) const {
  if (in.size() < kCountHeaderBytes) {
    return InvalidArgumentError("onebit: buffer shorter than header");
  }
  size_t offset = 0;
  return static_cast<size_t>(in.ReadAt<uint32_t>(offset));
}

size_t OnebitCompressor::MaxEncodedSize(size_t elements) const {
  return kHeaderBytes + PackedBytes(elements, 1);
}

double OnebitCompressor::CompressionRate(size_t elements) const {
  if (elements == 0) {
    return 1.0;
  }
  return static_cast<double>(MaxEncodedSize(elements)) /
         static_cast<double>(elements * sizeof(float));
}

}  // namespace hipress
