#include "src/compress/onebit.h"

#include <algorithm>
#include <cstring>
#include <mutex>

#include "src/common/bitops.h"
#include "src/common/thread_pool.h"

namespace hipress {
namespace {

constexpr size_t kHeaderBytes =
    kCountHeaderBytes + 2 * sizeof(float);  // count, neg_mean, pos_mean
constexpr size_t kParallelGrain = 64 * 1024;

struct SignStats {
  double pos_sum = 0.0;
  double neg_sum = 0.0;
  size_t pos_count = 0;
  size_t neg_count = 0;
};

}  // namespace

StatusOr<size_t> OnebitCompressor::EncodeInto(std::span<const float> gradient,
                                              std::span<uint8_t> out) const {
  const size_t n = gradient.size();
  const size_t needed = kHeaderBytes + PackedBytes(n, 1);
  if (out.size() < needed) {
    return ResourceExhaustedError("onebit: output capacity too small");
  }
  uint8_t* bytes = out.data();

  // Pass 1: signed means (sharded reduce).
  SignStats stats;
  std::mutex stats_mutex;
  ThreadPool::Global().ParallelFor(n, kParallelGrain, [&](size_t begin,
                                                          size_t end) {
    SignStats local;
    for (size_t i = begin; i < end; ++i) {
      const float v = gradient[i];
      if (v >= 0.0f) {
        local.pos_sum += v;
        ++local.pos_count;
      } else {
        local.neg_sum += v;
        ++local.neg_count;
      }
    }
    std::lock_guard<std::mutex> lock(stats_mutex);
    stats.pos_sum += local.pos_sum;
    stats.neg_sum += local.neg_sum;
    stats.pos_count += local.pos_count;
    stats.neg_count += local.neg_count;
  });
  const float pos_mean =
      stats.pos_count > 0
          ? static_cast<float>(stats.pos_sum / static_cast<double>(stats.pos_count))
          : 0.0f;
  const float neg_mean =
      stats.neg_count > 0
          ? static_cast<float>(stats.neg_sum / static_cast<double>(stats.neg_count))
          : 0.0f;

  const uint32_t count = static_cast<uint32_t>(n);
  std::memcpy(bytes, &count, sizeof(count));
  std::memcpy(bytes + sizeof(count), &neg_mean, sizeof(neg_mean));
  std::memcpy(bytes + sizeof(count) + sizeof(neg_mean), &pos_mean,
              sizeof(pos_mean));

  // Pass 2: pack sign bits, 8 elements per output byte. Shards are aligned
  // to 8-element groups so no two shards touch the same byte.
  uint8_t* packed = bytes + kHeaderBytes;
  const size_t num_bytes = PackedBytes(n, 1);
  ThreadPool::Global().ParallelFor(
      num_bytes, kParallelGrain / 8, [&](size_t byte_begin, size_t byte_end) {
        for (size_t b = byte_begin; b < byte_end; ++b) {
          uint8_t byte = 0;
          const size_t base = b * 8;
          const size_t limit = std::min<size_t>(8, n - base);
          for (size_t i = 0; i < limit; ++i) {
            if (gradient[base + i] >= 0.0f) {
              byte |= static_cast<uint8_t>(1u << i);
            }
          }
          packed[b] = byte;
        }
      });
  return needed;
}

Status OnebitCompressor::Decode(const ByteBuffer& in,
                                std::span<float> out) const {
  if (in.size() < kHeaderBytes) {
    return InvalidArgumentError("onebit: buffer shorter than header");
  }
  size_t offset = 0;
  const uint32_t count = in.ReadAt<uint32_t>(offset);
  const float neg_mean = in.ReadAt<float>(offset);
  const float pos_mean = in.ReadAt<float>(offset);
  if (out.size() != count) {
    return InvalidArgumentError("onebit: output size mismatch");
  }
  if (in.size() < kHeaderBytes + PackedBytes(count, 1)) {
    return InvalidArgumentError("onebit: truncated payload");
  }
  const uint8_t* packed = in.data() + kHeaderBytes;
  ThreadPool::Global().ParallelFor(
      PackedBytes(count, 1), kParallelGrain / 8,
      [&](size_t byte_begin, size_t byte_end) {
        for (size_t b = byte_begin; b < byte_end; ++b) {
          const uint8_t byte = packed[b];
          const size_t base = b * 8;
          const size_t limit = std::min<size_t>(8, count - base);
          for (size_t i = 0; i < limit; ++i) {
            out[base + i] = ((byte >> i) & 1u) ? pos_mean : neg_mean;
          }
        }
      });
  return OkStatus();
}

Status OnebitCompressor::DecodeAdd(const ByteBuffer& in,
                                   std::span<float> accum) const {
  if (in.size() < kHeaderBytes) {
    return InvalidArgumentError("onebit: buffer shorter than header");
  }
  size_t offset = 0;
  const uint32_t count = in.ReadAt<uint32_t>(offset);
  const float neg_mean = in.ReadAt<float>(offset);
  const float pos_mean = in.ReadAt<float>(offset);
  if (accum.size() != count) {
    return InvalidArgumentError("onebit: accumulator size mismatch");
  }
  if (in.size() < kHeaderBytes + PackedBytes(count, 1)) {
    return InvalidArgumentError("onebit: truncated payload");
  }
  const uint8_t* packed = in.data() + kHeaderBytes;
  ThreadPool::Global().ParallelFor(
      PackedBytes(count, 1), kParallelGrain / 8,
      [&](size_t byte_begin, size_t byte_end) {
        for (size_t b = byte_begin; b < byte_end; ++b) {
          const uint8_t byte = packed[b];
          const size_t base = b * 8;
          const size_t limit = std::min<size_t>(8, count - base);
          for (size_t i = 0; i < limit; ++i) {
            accum[base + i] += ((byte >> i) & 1u) ? pos_mean : neg_mean;
          }
        }
      });
  return OkStatus();
}

StatusOr<size_t> OnebitCompressor::EncodedElementCount(
    const ByteBuffer& in) const {
  if (in.size() < kCountHeaderBytes) {
    return InvalidArgumentError("onebit: buffer shorter than header");
  }
  size_t offset = 0;
  return static_cast<size_t>(in.ReadAt<uint32_t>(offset));
}

size_t OnebitCompressor::MaxEncodedSize(size_t elements) const {
  return kHeaderBytes + PackedBytes(elements, 1);
}

double OnebitCompressor::CompressionRate(size_t elements) const {
  if (elements == 0) {
    return 1.0;
  }
  return static_cast<double>(MaxEncodedSize(elements)) /
         static_cast<double>(elements * sizeof(float));
}

}  // namespace hipress
