// Gradient compression codec interface (CompLL's unified API abstraction).
//
// The paper's CompLL exposes exactly two entry points per algorithm:
//
//   void encode(float* input, uint8* output, params);
//   void decode(uint8* input, float* output, params);
//
// Compressor mirrors that contract. Codecs are stateless pure functions of
// their input; algorithm state needed for convergence (error-feedback
// residuals, momentum correction) lives in ErrorFeedback, layered on top.
//
// Encoded buffers are self-describing: every codec writes a small header
// containing at least the original element count, so decode never needs
// out-of-band metadata. Compressed gradients are NOT aggregatable — an
// aggregator must decode, merge, and re-encode, which is precisely the extra
// work CaSync schedules along the synchronization path.
#ifndef HIPRESS_SRC_COMPRESS_COMPRESSOR_H_
#define HIPRESS_SRC_COMPRESS_COMPRESSOR_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/tensor/tensor.h"

namespace hipress {

// Algorithm-specific knobs, following each paper's defaults.
struct CompressorParams {
  // TernGrad: quantization bitwidth (2 => 4 levels). Fig. 12b sweeps 2/4/8.
  unsigned bitwidth = 2;
  // DGC / GradDrop: fraction of elements kept (0.001 = 0.1%).
  double sparsity_ratio = 0.001;
  // TBQ: quantization threshold tau.
  float threshold = 0.05f;
  // Seed for stochastic rounding / sampling; element-indexed hashing keeps
  // results independent of thread sharding.
  uint64_t seed = 0x5eed;
};

class Compressor {
 public:
  virtual ~Compressor() = default;

  virtual std::string_view name() const = 0;

  // Sparsification (index/value pairs) vs quantization (dense low precision).
  virtual bool is_sparse() const = 0;

  // Compresses `gradient` into `out` (overwritten). Non-virtual
  // convenience over EncodeInto: sizes `out` to MaxEncodedSize, encodes in
  // place, and trims to the written length. With pooled ByteBuffer storage
  // this allocates nothing once the pool is warm.
  Status Encode(std::span<const float> gradient, ByteBuffer* out) const;

  // Compresses `gradient` into caller-provided capacity and returns the
  // number of bytes written. Returns ResourceExhausted (without touching
  // `out` meaningfully) when `out.size()` is too small — callers size with
  // MaxEncodedSize(), or WorstCaseEncodedSize() for a guaranteed fit.
  virtual StatusOr<size_t> EncodeInto(std::span<const float> gradient,
                                      std::span<uint8_t> out) const = 0;

  // Decompresses `in` into `out`, overwriting all elements (sparse codecs
  // zero-fill the complement). `out.size()` must equal the encoded element
  // count.
  virtual Status Decode(const ByteBuffer& in, std::span<float> out) const = 0;

  // Fused decode+merge: accumulates the decoded gradient into `accum`
  // (the decode/merge fusion called out in Section 5).
  virtual Status DecodeAdd(const ByteBuffer& in,
                           std::span<float> accum) const;

  // Number of elements recorded in an encoded buffer's header.
  virtual StatusOr<size_t> EncodedElementCount(const ByteBuffer& in) const = 0;

  // Worst-case encoded byte size for `elements` input elements.
  virtual size_t MaxEncodedSize(size_t elements) const = 0;

  // Hard upper bound on EncodeInto's output. Defaults to MaxEncodedSize;
  // codecs whose expected bound can be exceeded on adversarial inputs
  // (threshold sparsifiers that keep more than the target fraction)
  // override this with the true worst case. Encode() retries at this size
  // when the MaxEncodedSize attempt comes back ResourceExhausted.
  virtual size_t WorstCaseEncodedSize(size_t elements) const {
    return MaxEncodedSize(elements);
  }

  // Expected compression rate r = encoded_bytes / original_bytes, used by
  // the SeCoPa cost model (Table 2's `r`).
  virtual double CompressionRate(size_t elements) const = 0;
};

// Shared header every codec places first: element count as uint32.
// (Gradients above 4G elements would be partitioned long before encoding.)
inline constexpr size_t kCountHeaderBytes = sizeof(uint32_t);

// Deterministic per-element uniform in [0,1): hash of (seed, index). Using a
// counter-based generator keeps stochastic rounding identical no matter how
// encode work is sharded across threads.
float HashUniform(uint64_t seed, uint64_t index);

}  // namespace hipress

#endif  // HIPRESS_SRC_COMPRESS_COMPRESSOR_H_
