#include "src/compress/error_feedback.h"

#include "src/common/buffer_pool.h"

namespace hipress {

Status ErrorFeedback::EncodeWithFeedback(const std::string& key,
                                         std::span<const float> gradient,
                                         ByteBuffer* out) {
  auto& residual = residuals_[key];
  if (residual.size() != gradient.size()) {
    residual.assign(gradient.size(), 0.0f);
  }

  // corrected = gradient + residual
  Workspace ws;
  PooledFloats corrected = ws.floats(gradient.size());
  for (size_t i = 0; i < gradient.size(); ++i) {
    corrected[i] = gradient[i] + residual[i];
  }

  RETURN_IF_ERROR(compressor_->Encode(corrected.span(), out));

  // residual = corrected - decode(encode(corrected))
  PooledFloats decoded = ws.zeroed_floats(gradient.size());
  RETURN_IF_ERROR(compressor_->Decode(*out, decoded.span()));
  for (size_t i = 0; i < gradient.size(); ++i) {
    residual[i] = corrected[i] - decoded[i];
  }
  return OkStatus();
}

std::span<const float> ErrorFeedback::residual(const std::string& key) const {
  auto it = residuals_.find(key);
  if (it == residuals_.end()) {
    return {};
  }
  return std::span<const float>(it->second);
}

}  // namespace hipress
