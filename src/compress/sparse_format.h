// Shared index/value payload layout for sparsification codecs (DGC,
// GradDrop):
//
//   uint32 count | uint32 k | k * uint32 indices | k * float values
//
// Indices are strictly increasing, which the decoder relies on for
// cache-friendly scatters and the fuzz tests verify.
#ifndef HIPRESS_SRC_COMPRESS_SPARSE_FORMAT_H_
#define HIPRESS_SRC_COMPRESS_SPARSE_FORMAT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/tensor/tensor.h"

namespace hipress {

struct SparseView {
  uint32_t count = 0;  // original element count
  uint32_t k = 0;      // selected element count
  const uint32_t* indices = nullptr;
  const float* values = nullptr;
};

constexpr size_t SparseEncodedSize(size_t k) {
  return 2 * sizeof(uint32_t) + k * (sizeof(uint32_t) + sizeof(float));
}

// Writes the payload from parallel index/value arrays (already sorted by
// index ascending).
void SparseEncode(uint32_t original_count, std::span<const uint32_t> indices,
                  std::span<const float> values, ByteBuffer* out);

// Span variant for pooled, caller-sized destinations: writes the payload
// into `out` and returns the bytes written, or ResourceExhausted when the
// capacity is short of SparseEncodedSize(indices.size()).
StatusOr<size_t> SparseEncodeInto(uint32_t original_count,
                                  std::span<const uint32_t> indices,
                                  std::span<const float> values,
                                  std::span<uint8_t> out);

// Validates and maps a payload without copying.
StatusOr<SparseView> SparseParse(const ByteBuffer& in);

// Scatter into `out` (zero-filling the complement when kOverwrite).
Status SparseDecode(const ByteBuffer& in, std::span<float> out);
// Scatter-add into `accum` (fused decode+merge).
Status SparseDecodeAdd(const ByteBuffer& in, std::span<float> accum);

}  // namespace hipress

#endif  // HIPRESS_SRC_COMPRESS_SPARSE_FORMAT_H_
