#include "src/compress/fp16.h"

#include <cstring>

#include "src/common/thread_pool.h"
#include "src/compress/simd_kernels.h"

namespace hipress {
namespace {

constexpr size_t kParallelGrain = 64 * 1024;

}  // namespace

uint16_t FloatToHalf(float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const uint32_t sign = (bits >> 16) & 0x8000u;
  const uint32_t src_exponent = (bits >> 23) & 0xffu;
  const uint32_t mantissa = bits & 0x7fffffu;

  if (src_exponent == 0xffu) {
    // Inf passes through; NaN keeps its top 10 payload bits and is quieted
    // — the same result the F16C/AVX-512 conversion instructions produce,
    // which keeps the scalar tier bit-identical to the vector tiers.
    const uint32_t payload =
        mantissa != 0 ? (0x200u | (mantissa >> 13)) : 0u;
    return static_cast<uint16_t>(sign | 0x7c00u | payload);
  }

  const int32_t exponent = static_cast<int32_t>(src_exponent) - 127 + 15;
  if (exponent >= 0x1f) {
    return static_cast<uint16_t>(sign | 0x7c00u);  // overflow to inf
  }
  if (exponent <= 0) {
    if (exponent < -10) {
      return static_cast<uint16_t>(sign);  // underflow to signed zero
    }
    // Subnormal: shift mantissa (with implicit leading 1) into place,
    // rounding to nearest-even like the hardware converters.
    const uint32_t full = mantissa | 0x800000u;
    const uint32_t shift = static_cast<uint32_t>(14 - exponent);
    uint32_t half = full >> shift;
    const uint32_t rem = full & ((1u << shift) - 1u);
    const uint32_t half_point = 1u << (shift - 1);
    if (rem > half_point || (rem == half_point && (half & 1u) != 0)) {
      ++half;  // may carry into the smallest normal, which is still correct
    }
    return static_cast<uint16_t>(sign | half);
  }
  // Normal: round mantissa to 10 bits (round-to-nearest-even).
  uint32_t half = sign | (static_cast<uint32_t>(exponent) << 10) |
                  (mantissa >> 13);
  const uint32_t round_bits = mantissa & 0x1fffu;
  if (round_bits > 0x1000u ||
      (round_bits == 0x1000u && (half & 1u) != 0)) {
    ++half;  // may carry into the exponent, which is still correct
  }
  return static_cast<uint16_t>(half);
}

float HalfToFloat(uint16_t half) {
  const uint32_t sign = static_cast<uint32_t>(half & 0x8000u) << 16;
  const uint32_t exponent = (half >> 10) & 0x1fu;
  const uint32_t mantissa = half & 0x3ffu;
  uint32_t bits;
  if (exponent == 0) {
    if (mantissa == 0) {
      bits = sign;  // signed zero
    } else {
      // Subnormal half: renormalize.
      int e = -1;
      uint32_t m = mantissa;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      bits = sign | static_cast<uint32_t>(127 - 15 - e) << 23 |
             ((m & 0x3ffu) << 13);
    }
  } else if (exponent == 0x1f) {
    if (mantissa == 0) {
      bits = sign | 0x7f800000u;  // inf
    } else {
      // NaN: quieted like the hardware converter (bit 22 forced on).
      bits = sign | 0x7f800000u | 0x400000u | (mantissa << 13);
    }
  } else {
    bits = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

StatusOr<size_t> Fp16Compressor::EncodeInto(std::span<const float> gradient,
                                            std::span<uint8_t> out) const {
  const size_t n = gradient.size();
  const size_t needed = kCountHeaderBytes + n * sizeof(uint16_t);
  if (out.size() < needed) {
    return ResourceExhaustedError("fp16: output capacity too small");
  }
  const uint32_t count = static_cast<uint32_t>(n);
  std::memcpy(out.data(), &count, sizeof(count));
  auto* halves = reinterpret_cast<uint16_t*>(out.data() + kCountHeaderBytes);
  ThreadPool::Global().ParallelFor(
      n, kParallelGrain, [&](size_t begin, size_t end) {
        simd::Fp16Encode(gradient.data() + begin, end - begin, halves + begin,
                         end - begin);
      });
  return needed;
}

namespace {

template <bool kAccumulate>
Status Fp16DecodeImpl(const ByteBuffer& in, std::span<float> out) {
  if (in.size() < kCountHeaderBytes) {
    return InvalidArgumentError("fp16: buffer shorter than header");
  }
  size_t offset = 0;
  const uint32_t count = in.ReadAt<uint32_t>(offset);
  if (out.size() != count) {
    return InvalidArgumentError("fp16: output size mismatch");
  }
  if (in.size() < kCountHeaderBytes + count * sizeof(uint16_t)) {
    return InvalidArgumentError("fp16: truncated payload");
  }
  const auto* halves =
      reinterpret_cast<const uint16_t*>(in.data() + kCountHeaderBytes);
  ThreadPool::Global().ParallelFor(
      count, kParallelGrain, [&](size_t begin, size_t end) {
        if constexpr (kAccumulate) {
          simd::Fp16DecodeAdd(halves + begin, end - begin,
                              out.data() + begin);
        } else {
          simd::Fp16Decode(halves + begin, end - begin, out.data() + begin);
        }
      });
  return OkStatus();
}

}  // namespace

Status Fp16Compressor::Decode(const ByteBuffer& in,
                              std::span<float> out) const {
  return Fp16DecodeImpl<false>(in, out);
}

Status Fp16Compressor::DecodeAdd(const ByteBuffer& in,
                                 std::span<float> accum) const {
  return Fp16DecodeImpl<true>(in, accum);
}

StatusOr<size_t> Fp16Compressor::EncodedElementCount(
    const ByteBuffer& in) const {
  if (in.size() < kCountHeaderBytes) {
    return InvalidArgumentError("fp16: buffer shorter than header");
  }
  size_t offset = 0;
  return static_cast<size_t>(in.ReadAt<uint32_t>(offset));
}

size_t Fp16Compressor::MaxEncodedSize(size_t elements) const {
  return kCountHeaderBytes + elements * sizeof(uint16_t);
}

double Fp16Compressor::CompressionRate(size_t elements) const {
  if (elements == 0) {
    return 1.0;
  }
  return static_cast<double>(MaxEncodedSize(elements)) /
         static_cast<double>(elements * sizeof(float));
}

}  // namespace hipress
