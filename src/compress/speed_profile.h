// Calibrated kernel-speed profiles for the discrete-event simulations.
//
// The cluster simulator needs T_enc(m) / T_dec(m) / T_merge(m) (Table 2)
// without running the real codecs over 100+ MB tensors on every simulated
// step. These linear profiles (launch overhead + bytes/throughput) are
// calibrated against the figures the paper reports:
//
//   * OSS-TBQ GPU encodes 256 MB in 38.2 ms (~7 GB/s); CompLL-TBQ is 12x
//     faster (Section 4.4).
//   * CompLL-DGC outperforms the hand-optimized OSS-DGC GPU encode by up to
//     5.1x (Section 4.4).
//   * CompLL-onebit runs up to 35.6x faster than the OSS CPU onebit
//     (Sections 2.5 and 4.4).
//   * V100 HBM2 ~900 GB/s; a multi-pass quantizer lands at 70-160 GB/s of
//     input traffic. The 1080 Ti scales by its 484/900 bandwidth ratio.
//
// Throughputs are in bytes of ORIGINAL (uncompressed) gradient processed per
// second, so T(m) is always a function of the uncompressed partition size —
// matching how the paper's cost model is parameterized.
#ifndef HIPRESS_SRC_COMPRESS_SPEED_PROFILE_H_
#define HIPRESS_SRC_COMPRESS_SPEED_PROFILE_H_

#include <string>
#include <string_view>

#include "src/common/units.h"
#include "src/simgpu/gpu.h"

namespace hipress {

enum class GpuPlatform {
  kV100,    // AWS p3dn.24xlarge cluster
  k1080Ti,  // local cluster
};

enum class CodecImpl {
  kCompLL,   // generated, optimized (on-GPU)
  kOss,      // open-source counterpart (on-GPU where one exists)
  kCpu,      // on-CPU implementation (BytePS's original onebit, scalar)
  kCpuSimd,  // on-CPU with the AVX2/AVX-512 kernels (src/compress/
             // simd_kernels.h); calibrated from bench_kernels' measured
             // scalar-vs-SIMD speedups (docs/KERNELS.md)
};

struct CodecSpeed {
  KernelCost encode;
  KernelCost decode;
};

// Speed profile for one (algorithm, implementation, platform) triple.
// Unknown algorithm names get a conservative generic profile.
CodecSpeed GetCodecSpeed(std::string_view algorithm, CodecImpl impl,
                         GpuPlatform platform);

// Gradient merge (element-wise add) kernel cost.
KernelCost GetMergeCost(GpuPlatform platform);

// DNN compute capability scale factor relative to V100 (used by the model
// compute-time profiles).
double ComputeScale(GpuPlatform platform);

}  // namespace hipress

#endif  // HIPRESS_SRC_COMPRESS_SPEED_PROFILE_H_
