#include "src/compress/terngrad.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <mutex>

#include "src/common/bitops.h"
#include "src/common/thread_pool.h"

namespace hipress {
namespace {

constexpr size_t kHeaderBytes =
    kCountHeaderBytes + sizeof(uint8_t) + 2 * sizeof(float);
constexpr size_t kParallelGrain = 16 * 1024;

bool ValidBitwidth(unsigned bits) {
  return bits == 1 || bits == 2 || bits == 4 || bits == 8;
}

}  // namespace

StatusOr<size_t> TernGradCompressor::EncodeInto(
    std::span<const float> gradient, std::span<uint8_t> out) const {
  if (!ValidBitwidth(bitwidth_)) {
    return InvalidArgumentError("terngrad: bitwidth must be 1/2/4/8");
  }
  const size_t n = gradient.size();
  const size_t needed = kHeaderBytes + PackedBytes(n, bitwidth_);
  if (out.size() < needed) {
    return ResourceExhaustedError("terngrad: output capacity too small");
  }
  uint8_t* bytes = out.data();

  // Pass 1: min/max reduce (sharded).
  float min_value = n > 0 ? gradient[0] : 0.0f;
  float max_value = min_value;
  std::mutex minmax_mutex;
  ThreadPool::Global().ParallelFor(n, 64 * 1024, [&](size_t begin,
                                                     size_t end) {
    float local_min = gradient[begin];
    float local_max = gradient[begin];
    for (size_t i = begin + 1; i < end; ++i) {
      local_min = std::min(local_min, gradient[i]);
      local_max = std::max(local_max, gradient[i]);
    }
    std::lock_guard<std::mutex> lock(minmax_mutex);
    min_value = std::min(min_value, local_min);
    max_value = std::max(max_value, local_max);
  });

  const uint32_t count = static_cast<uint32_t>(n);
  const uint8_t bits = static_cast<uint8_t>(bitwidth_);
  size_t write = 0;
  std::memcpy(bytes + write, &count, sizeof(count));
  write += sizeof(count);
  std::memcpy(bytes + write, &bits, sizeof(bits));
  write += sizeof(bits);
  std::memcpy(bytes + write, &min_value, sizeof(min_value));
  write += sizeof(min_value);
  std::memcpy(bytes + write, &max_value, sizeof(max_value));

  const uint32_t levels = (1u << bitwidth_) - 1;
  const float gap =
      levels > 0 ? (max_value - min_value) / static_cast<float>(levels) : 0.0f;
  const float inv_gap = gap > 0.0f ? 1.0f / gap : 0.0f;
  uint8_t* packed = bytes + kHeaderBytes;
  const unsigned per_byte = 8 / bitwidth_;
  const size_t num_bytes = PackedBytes(n, bitwidth_);
  const uint64_t seed = seed_;
  const unsigned bitwidth = bitwidth_;

  // Pass 2: stochastic quantize + pack. Element-indexed hashing makes the
  // rounding independent of how shards split the range.
  ThreadPool::Global().ParallelFor(
      num_bytes, kParallelGrain, [&](size_t byte_begin, size_t byte_end) {
        for (size_t b = byte_begin; b < byte_end; ++b) {
          uint8_t byte = 0;
          const size_t base = b * per_byte;
          const size_t limit = std::min<size_t>(per_byte, n - base);
          for (size_t i = 0; i < limit; ++i) {
            const size_t idx = base + i;
            uint32_t q = 0;
            if (gap > 0.0f) {
              const float r = (gradient[idx] - min_value) * inv_gap;
              const float u = HashUniform(seed, idx);
              q = static_cast<uint32_t>(std::floor(r + u));
              q = std::min(q, levels);
            }
            byte |= static_cast<uint8_t>(q << (i * bitwidth));
          }
          packed[b] = byte;
        }
      });
  return needed;
}

namespace {

template <bool kAccumulate>
Status TernGradDecodeImpl(const ByteBuffer& in, std::span<float> out) {
  if (in.size() < kHeaderBytes) {
    return InvalidArgumentError("terngrad: buffer shorter than header");
  }
  size_t offset = 0;
  const uint32_t count = in.ReadAt<uint32_t>(offset);
  const uint8_t bits = in.ReadAt<uint8_t>(offset);
  const float min_value = in.ReadAt<float>(offset);
  const float max_value = in.ReadAt<float>(offset);
  if (!(bits == 1 || bits == 2 || bits == 4 || bits == 8)) {
    return InvalidArgumentError("terngrad: corrupt bitwidth");
  }
  if (out.size() != count) {
    return InvalidArgumentError("terngrad: output size mismatch");
  }
  if (in.size() < kHeaderBytes + PackedBytes(count, bits)) {
    return InvalidArgumentError("terngrad: truncated payload");
  }
  const uint32_t levels = (1u << bits) - 1;
  const float gap =
      levels > 0 ? (max_value - min_value) / static_cast<float>(levels) : 0.0f;
  const uint8_t* packed = in.data() + kHeaderBytes;
  const unsigned per_byte = 8 / bits;
  const uint8_t mask = static_cast<uint8_t>((1u << bits) - 1);
  ThreadPool::Global().ParallelFor(
      PackedBytes(count, bits), kParallelGrain,
      [&](size_t byte_begin, size_t byte_end) {
        for (size_t b = byte_begin; b < byte_end; ++b) {
          const uint8_t byte = packed[b];
          const size_t base = b * per_byte;
          const size_t limit = std::min<size_t>(per_byte, count - base);
          for (size_t i = 0; i < limit; ++i) {
            const uint32_t q = (byte >> (i * bits)) & mask;
            const float value = min_value + static_cast<float>(q) * gap;
            if constexpr (kAccumulate) {
              out[base + i] += value;
            } else {
              out[base + i] = value;
            }
          }
        }
      });
  return OkStatus();
}

}  // namespace

Status TernGradCompressor::Decode(const ByteBuffer& in,
                                  std::span<float> out) const {
  return TernGradDecodeImpl<false>(in, out);
}

Status TernGradCompressor::DecodeAdd(const ByteBuffer& in,
                                     std::span<float> accum) const {
  return TernGradDecodeImpl<true>(in, accum);
}

StatusOr<size_t> TernGradCompressor::EncodedElementCount(
    const ByteBuffer& in) const {
  if (in.size() < kCountHeaderBytes) {
    return InvalidArgumentError("terngrad: buffer shorter than header");
  }
  size_t offset = 0;
  return static_cast<size_t>(in.ReadAt<uint32_t>(offset));
}

size_t TernGradCompressor::MaxEncodedSize(size_t elements) const {
  return kHeaderBytes + PackedBytes(elements, bitwidth_);
}

double TernGradCompressor::CompressionRate(size_t elements) const {
  if (elements == 0) {
    return 1.0;
  }
  return static_cast<double>(MaxEncodedSize(elements)) /
         static_cast<double>(elements * sizeof(float));
}

}  // namespace hipress
