#include "src/tensor/tensor.h"

#include <cmath>
#include <cstring>

#include "src/common/logging.h"

namespace hipress {

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::Add(const Tensor& other) {
  CHECK_EQ(size(), other.size());
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
}

void Tensor::Scale(float scale) {
  for (float& value : data_) {
    value *= scale;
  }
}

double Tensor::Norm() const {
  double sum = 0.0;
  for (float value : data_) {
    sum += static_cast<double>(value) * static_cast<double>(value);
  }
  return std::sqrt(sum);
}

void Tensor::FillGaussian(Rng& rng, float stddev) {
  for (float& value : data_) {
    value = static_cast<float>(rng.NextGaussian()) * stddev;
  }
}

void Tensor::FillUniform(Rng& rng, float lo, float hi) {
  for (float& value : data_) {
    value = static_cast<float>(rng.NextUniform(lo, hi));
  }
}

double MaxAbsDiff(std::span<const float> a, std::span<const float> b) {
  CHECK_EQ(a.size(), b.size());
  double max_diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::abs(static_cast<double>(a[i]) - b[i]));
  }
  return max_diff;
}

double RmsDiff(std::span<const float> a, std::span<const float> b) {
  CHECK_EQ(a.size(), b.size());
  if (a.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(a.size()));
}

}  // namespace hipress
