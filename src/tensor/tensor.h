// Gradient tensors and compressed byte buffers.
//
// Gradients in data-parallel training are synchronized as flat fp32 arrays
// (layer shape is irrelevant to synchronization), so Tensor is a named,
// contiguous float buffer. Compressed gradients are opaque byte strings
// (ByteBuffer) whose layout is private to each compression codec.
//
// Both types draw their storage from BufferPool::Global() (see
// docs/MEMORY.md): construction, Resize and destruction recycle
// bucket-rounded blocks instead of hitting the heap, so steady-state
// training iterations perform zero fresh allocations. Value semantics match
// std::vector exactly — growth zero-fills, copies deep-copy — which keeps
// compressed outputs bit-identical to the pre-pool implementation.
#ifndef HIPRESS_SRC_TENSOR_TENSOR_H_
#define HIPRESS_SRC_TENSOR_TENSOR_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/common/buffer_pool.h"
#include "src/common/logging.h"
#include "src/common/rng.h"

namespace hipress {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(size_t size) { Resize(size); }
  Tensor(std::string name, size_t size) : name_(std::move(name)) {
    Resize(size);
  }
  Tensor(std::string name, std::vector<float> data) : name_(std::move(name)) {
    Assign(data.data(), data.size());
  }

  Tensor(const Tensor& other) : name_(other.name_) {
    Assign(other.data(), other.size());
  }
  Tensor& operator=(const Tensor& other) {
    if (this != &other) {
      name_ = other.name_;
      Assign(other.data(), other.size());
    }
    return *this;
  }
  Tensor(Tensor&& other) noexcept
      : name_(std::move(other.name_)), data_(std::move(other.data_)) {}
  Tensor& operator=(Tensor&& other) noexcept {
    name_ = std::move(other.name_);
    data_ = std::move(other.data_);
    return *this;
  }
  ~Tensor() = default;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t size() const { return data_.size(); }
  size_t byte_size() const { return data_.size() * sizeof(float); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](size_t i) { return data_[i]; }
  float operator[](size_t i) const { return data_[i]; }

  std::span<float> span() { return data_.span(); }
  std::span<const float> span() const { return data_.span(); }

  // Subrange view [offset, offset + count).
  std::span<float> slice(size_t offset, size_t count) {
    return data_.span().subspan(offset, count);
  }
  std::span<const float> slice(size_t offset, size_t count) const {
    return data_.span().subspan(offset, count);
  }

  void Fill(float value);
  // Grows zero-filled (std::vector::resize semantics).
  void Resize(size_t size) {
    const size_t old_size = data_.size();
    data_.resize(size);
    for (size_t i = old_size; i < size; ++i) {
      data_[i] = 0.0f;
    }
  }

  // Element-wise accumulate: this += other. Sizes must match.
  void Add(const Tensor& other);
  // this *= scale.
  void Scale(float scale);

  // L2 norm of the tensor.
  double Norm() const;

  // Fills with N(0, stddev) values from `rng`.
  void FillGaussian(Rng& rng, float stddev = 1.0f);

  // Fills with U[lo, hi) values from `rng`.
  void FillUniform(Rng& rng, float lo, float hi);

 private:
  void Assign(const float* values, size_t count) {
    data_.resize(count);
    if (count > 0) {
      std::memcpy(data_.data(), values, count * sizeof(float));
    }
  }

  std::string name_;
  PooledFloats data_;
};

// Opaque compressed payload.
class ByteBuffer {
 public:
  ByteBuffer() = default;
  // Storage drawn from `pool` instead of BufferPool::Global() — wire-path
  // buffers use the network's pool so their recycling is gated separately.
  explicit ByteBuffer(BufferPool* pool) : data_(pool) {}
  explicit ByteBuffer(size_t size) { Resize(size); }
  explicit ByteBuffer(std::vector<uint8_t> data) {
    Assign(data.data(), data.size());
  }
  explicit ByteBuffer(std::span<const uint8_t> data) {
    Assign(data.data(), data.size());
  }

  ByteBuffer(const ByteBuffer& other) { Assign(other.data(), other.size()); }
  ByteBuffer& operator=(const ByteBuffer& other) {
    if (this != &other) {
      Assign(other.data(), other.size());
    }
    return *this;
  }
  ByteBuffer(ByteBuffer&&) noexcept = default;
  ByteBuffer& operator=(ByteBuffer&&) noexcept = default;
  ~ByteBuffer() = default;

  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  uint8_t* data() { return data_.data(); }
  const uint8_t* data() const { return data_.data(); }

  uint8_t& operator[](size_t i) { return data_[i]; }
  uint8_t operator[](size_t i) const { return data_[i]; }

  // Grows zero-filled (std::vector::resize semantics). Shrinking keeps the
  // pooled block for reuse.
  void Resize(size_t size) {
    const size_t old_size = data_.size();
    data_.resize(size);
    if (size > old_size) {
      std::memset(data_.data() + old_size, 0, size - old_size);
    }
  }
  void Reserve(size_t capacity) { data_.reserve(capacity); }
  void Clear() { data_.clear(); }

  std::span<uint8_t> span() { return data_.span(); }
  std::span<const uint8_t> span() const { return data_.span(); }

  // Typed append/read helpers for codec headers. Reads advance `offset`.
  template <typename T>
  void Append(const T& value) {
    const size_t offset = data_.size();
    data_.resize(offset + sizeof(T));
    std::memcpy(data_.data() + offset, &value, sizeof(T));
  }

  // Bounds-checked: a read past size() is a programming error upstream
  // (codecs must validate payload sizes before parsing) and aborts rather
  // than reading out of bounds.
  template <typename T>
  T ReadAt(size_t& offset) const {
    CHECK(sizeof(T) <= data_.size() && offset <= data_.size() - sizeof(T))
        << "ByteBuffer::ReadAt of " << sizeof(T) << " bytes at offset "
        << offset << " overruns buffer of " << data_.size() << " bytes";
    T value;
    std::memcpy(&value, data_.data() + offset, sizeof(T));
    offset += sizeof(T);
    return value;
  }

 private:
  void Assign(const uint8_t* bytes, size_t count) {
    data_.resize(count);
    if (count > 0) {
      std::memcpy(data_.data(), bytes, count);
    }
  }

  PooledBytes data_;
};

// Maximum absolute difference between two float spans (for codec tests).
double MaxAbsDiff(std::span<const float> a, std::span<const float> b);

// Root-mean-square difference between two float spans.
double RmsDiff(std::span<const float> a, std::span<const float> b);

}  // namespace hipress

#endif  // HIPRESS_SRC_TENSOR_TENSOR_H_
