// Gradient tensors and compressed byte buffers.
//
// Gradients in data-parallel training are synchronized as flat fp32 arrays
// (layer shape is irrelevant to synchronization), so Tensor is a named,
// contiguous float buffer. Compressed gradients are opaque byte strings
// (ByteBuffer) whose layout is private to each compression codec.
#ifndef HIPRESS_SRC_TENSOR_TENSOR_H_
#define HIPRESS_SRC_TENSOR_TENSOR_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace hipress {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(size_t size) : data_(size, 0.0f) {}
  Tensor(std::string name, size_t size)
      : name_(std::move(name)), data_(size, 0.0f) {}
  Tensor(std::string name, std::vector<float> data)
      : name_(std::move(name)), data_(std::move(data)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t size() const { return data_.size(); }
  size_t byte_size() const { return data_.size() * sizeof(float); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](size_t i) { return data_[i]; }
  float operator[](size_t i) const { return data_[i]; }

  std::span<float> span() { return std::span<float>(data_); }
  std::span<const float> span() const { return std::span<const float>(data_); }

  // Subrange view [offset, offset + count).
  std::span<float> slice(size_t offset, size_t count) {
    return std::span<float>(data_).subspan(offset, count);
  }
  std::span<const float> slice(size_t offset, size_t count) const {
    return std::span<const float>(data_).subspan(offset, count);
  }

  void Fill(float value);
  void Resize(size_t size) { data_.resize(size, 0.0f); }

  // Element-wise accumulate: this += other. Sizes must match.
  void Add(const Tensor& other);
  // this *= scale.
  void Scale(float scale);

  // L2 norm of the tensor.
  double Norm() const;

  // Fills with N(0, stddev) values from `rng`.
  void FillGaussian(Rng& rng, float stddev = 1.0f);

  // Fills with U[lo, hi) values from `rng`.
  void FillUniform(Rng& rng, float lo, float hi);

 private:
  std::string name_;
  std::vector<float> data_;
};

// Opaque compressed payload.
class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(size_t size) : data_(size, 0) {}
  explicit ByteBuffer(std::vector<uint8_t> data) : data_(std::move(data)) {}

  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  uint8_t* data() { return data_.data(); }
  const uint8_t* data() const { return data_.data(); }

  uint8_t& operator[](size_t i) { return data_[i]; }
  uint8_t operator[](size_t i) const { return data_[i]; }

  void Resize(size_t size) { data_.resize(size, 0); }
  void Clear() { data_.clear(); }

  std::span<uint8_t> span() { return std::span<uint8_t>(data_); }
  std::span<const uint8_t> span() const {
    return std::span<const uint8_t>(data_);
  }

  // Typed append/read helpers for codec headers. Reads advance `offset`.
  template <typename T>
  void Append(const T& value) {
    const auto* bytes = reinterpret_cast<const uint8_t*>(&value);
    data_.insert(data_.end(), bytes, bytes + sizeof(T));
  }

  template <typename T>
  T ReadAt(size_t& offset) const {
    T value;
    std::memcpy(&value, data_.data() + offset, sizeof(T));
    offset += sizeof(T);
    return value;
  }

 private:
  std::vector<uint8_t> data_;
};

// Maximum absolute difference between two float spans (for codec tests).
double MaxAbsDiff(std::span<const float> a, std::span<const float> b);

// Root-mean-square difference between two float spans.
double RmsDiff(std::span<const float> a, std::span<const float> b);

}  // namespace hipress

#endif  // HIPRESS_SRC_TENSOR_TENSOR_H_
