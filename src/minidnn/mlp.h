// A small but real multi-layer perceptron with exact backpropagation.
//
// The convergence experiments (Figure 13) need genuine gradients flowing
// through genuine lossy compression with error feedback — a timing
// simulator cannot show that accuracy is preserved. The paper's LSTM /
// ResNet50 workloads are substituted with an MLP on synthetic tasks (see
// DESIGN.md): the error-feedback dynamics that determine convergence parity
// are the same, at laptop scale.
#ifndef HIPRESS_SRC_MINIDNN_MLP_H_
#define HIPRESS_SRC_MINIDNN_MLP_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/tensor.h"

namespace hipress {

// One fully-connected layer, row-major weights [out][in], tanh hidden
// activation. The final layer is linear (losses apply softmax/MSE).
struct MlpConfig {
  int input_dim = 16;
  int hidden_dim = 32;
  int output_dim = 4;
  uint64_t init_seed = 0x311;
};

class Mlp {
 public:
  explicit Mlp(const MlpConfig& config);

  // Flattened parameters, grouped per layer (w1, b1, w2, b2).
  const std::vector<Tensor>& parameters() const { return params_; }
  std::vector<Tensor>& mutable_parameters() { return params_; }

  // Forward pass for a batch (inputs: batch x input_dim flattened).
  // Returns logits (batch x output_dim).
  std::vector<float> Forward(const std::vector<float>& inputs,
                             int batch) const;

  // Softmax cross-entropy loss and gradient computation for a labelled
  // batch. Gradients are accumulated into `grads` (same shapes as
  // parameters). Returns the mean loss.
  double BackwardCrossEntropy(const std::vector<float>& inputs,
                              const std::vector<int>& labels, int batch,
                              std::vector<Tensor>* grads) const;

  // Classification accuracy on a labelled batch.
  double Accuracy(const std::vector<float>& inputs,
                  const std::vector<int>& labels, int batch) const;

  // Zero-filled gradient tensors matching the parameter shapes.
  std::vector<Tensor> MakeGradients() const;

  // SGD with momentum: v = mu*v + g; p -= lr*v.
  void ApplySgd(const std::vector<Tensor>& grads, float lr, float momentum,
                std::vector<Tensor>* velocity);

  const MlpConfig& config() const { return config_; }

 private:
  MlpConfig config_;
  std::vector<Tensor> params_;  // w1, b1, w2, b2
};

}  // namespace hipress

#endif  // HIPRESS_SRC_MINIDNN_MLP_H_
