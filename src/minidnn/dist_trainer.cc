#include "src/minidnn/dist_trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/common/buffer_pool.h"
#include "src/compress/registry.h"

namespace hipress {

void SyntheticTask::Sample(Rng& rng, int batch, std::vector<float>* inputs,
                           std::vector<int>* labels) const {
  inputs->assign(static_cast<size_t>(batch) * input_dim, 0.0f);
  labels->assign(batch, 0);
  // Class means on deterministic unit directions derived from the task
  // seed, so every worker/eval batch shares the same geometry.
  Rng mean_rng(seed);
  std::vector<float> means(static_cast<size_t>(num_classes) * input_dim);
  for (float& m : means) {
    m = static_cast<float>(mean_rng.NextGaussian());
  }
  for (int s = 0; s < batch; ++s) {
    const int label = static_cast<int>(rng.NextBounded(num_classes));
    (*labels)[s] = label;
    const float* mean = &means[static_cast<size_t>(label) * input_dim];
    float* x = &(*inputs)[static_cast<size_t>(s) * input_dim];
    for (int i = 0; i < input_dim; ++i) {
      x[i] = mean[i] +
             cluster_spread * static_cast<float>(rng.NextGaussian());
    }
  }
}

DistTrainer::DistTrainer(const DistTrainConfig& config)
    : config_(config),
      model_(config.model),
      eval_rng_(config.task.seed ^ 0xe7a1) {}

StatusOr<std::unique_ptr<DistTrainer>> DistTrainer::Create(
    const DistTrainConfig& config) {
  if (config.num_workers < 1) {
    return InvalidArgumentError("need at least one worker");
  }
  if (config.model.input_dim != config.task.input_dim ||
      config.model.output_dim != config.task.num_classes) {
    return InvalidArgumentError("model dims must match the task");
  }
  std::unique_ptr<DistTrainer> trainer(new DistTrainer(config));
  if (!config.algorithm.empty()) {
    ASSIGN_OR_RETURN(trainer->codec_, CreateCompressor(config.algorithm,
                                                       config.codec_params));
    auto shared = std::shared_ptr<const Compressor>(
        trainer->codec_.get(), [](const Compressor*) {});
    for (int w = 0; w < config.num_workers; ++w) {
      trainer->feedback_.push_back(std::make_unique<ErrorFeedback>(shared));
    }
  }
  trainer->dataflow_ = std::make_unique<DataflowRunner>(
      config.strategy, trainer->codec_.get());
  // Preallocate the momentum state here rather than lazily inside the
  // first ApplySgd: its buffers are permanent, and taking them out of the
  // pool up front keeps the first training step the only one that faults
  // fresh blocks in (the steady-state zero-miss invariant).
  trainer->velocity_ = trainer->model_.MakeGradients();
  Rng root(config.task.seed);
  for (int w = 0; w < config.num_workers; ++w) {
    trainer->worker_rngs_.push_back(root.Fork(static_cast<uint64_t>(w) + 1));
  }
  config.task.Sample(trainer->eval_rng_, trainer->eval_batch_,
                     &trainer->eval_inputs_, &trainer->eval_labels_);
  return trainer;
}

StatusOr<double> DistTrainer::Step() {
  const int workers = config_.num_workers;
  const size_t num_params = model_.parameters().size();
  using Clock = std::chrono::steady_clock;
  const auto elapsed_us = [](Clock::time_point since) {
    return std::chrono::duration<double, std::micro>(Clock::now() - since)
        .count();
  };
  const auto compute_start = Clock::now();
  pool_misses_before_step_ = BufferPool::Global().stats().misses;

  // Per-worker local gradients: allocated on the first step, re-zeroed
  // afterwards so their pooled storage is reused every iteration.
  if (worker_grads_.empty()) {
    worker_grads_.resize(workers);
    for (int w = 0; w < workers; ++w) {
      worker_grads_[w] = model_.MakeGradients();
    }
  } else {
    for (auto& grads : worker_grads_) {
      for (Tensor& grad : grads) {
        grad.Fill(0.0f);
      }
    }
  }
  double loss_sum = 0.0;
  for (int w = 0; w < workers; ++w) {
    config_.task.Sample(worker_rngs_[w], config_.batch_per_worker,
                        &sample_inputs_, &sample_labels_);
    loss_sum += model_.BackwardCrossEntropy(sample_inputs_, sample_labels_,
                                            config_.batch_per_worker,
                                            &worker_grads_[w]);
  }
  metrics_.histogram("dist.compute_us").Observe(elapsed_us(compute_start));
  const auto sync_start = Clock::now();

  // Synchronize parameter by parameter (layer-wise, like the paper).
  std::vector<Tensor> synced(num_params);
  for (size_t p = 0; p < num_params; ++p) {
    sync_inputs_.clear();
    sync_inputs_.reserve(workers);
    for (int w = 0; w < workers; ++w) {
      Tensor& grad = worker_grads_[w][p];
      if (codec_ != nullptr) {
        // Error feedback: feed corrected = grad + residual into the sync;
        // EncodeWithFeedback updates the worker's residual with the same
        // deterministic encode the dataflow will apply.
        Tensor corrected(grad.name(), grad.size());
        const auto residual = feedback_[w]->residual(grad.name());
        for (size_t i = 0; i < grad.size(); ++i) {
          corrected[i] =
              grad[i] + (i < residual.size() ? residual[i] : 0.0f);
        }
        RETURN_IF_ERROR(feedback_[w]->EncodeWithFeedback(
            grad.name(), grad.span(), &feedback_scratch_));
        sync_inputs_.push_back(std::move(corrected));
      } else {
        sync_inputs_.push_back(grad);
      }
    }
    ASSIGN_OR_RETURN(std::vector<Tensor> outputs,
                     dataflow_->Run(sync_inputs_, config_.partitions));
    synced[p] = std::move(outputs[0]);
    synced[p].Scale(1.0f / static_cast<float>(workers));
  }

  metrics_.histogram("dist.sync_us").Observe(elapsed_us(sync_start));
  metrics_.counter("dist.steps").Increment();
  metrics_.gauge("dist.last_loss").Set(loss_sum / workers);

  // Mirror global pool health into this trainer's registry so callers can
  // assert the steady-state invariant (step miss delta hits zero once the
  // pool is warm) without reaching for the process-wide registry.
  const BufferPool::Stats pool = BufferPool::Global().stats();
  metrics_.gauge("mem.pool_hits").Set(static_cast<double>(pool.hits));
  metrics_.gauge("mem.pool_misses").Set(static_cast<double>(pool.misses));
  metrics_.gauge("mem.bytes_in_use").Set(
      static_cast<double>(pool.bytes_in_use));
  metrics_.gauge("mem.peak_bytes").Set(static_cast<double>(pool.peak_bytes));
  metrics_.gauge("mem.step_pool_misses")
      .Set(static_cast<double>(pool.misses - pool_misses_before_step_));

  model_.ApplySgd(synced, config_.learning_rate, config_.momentum,
                  &velocity_);
  return loss_sum / workers;
}

StatusOr<DistTrainResult> DistTrainer::Train(int steps, int eval_every,
                                             double target_accuracy) {
  DistTrainResult result;
  for (int step = 1; step <= steps; ++step) {
    ASSIGN_OR_RETURN(const double loss, Step());
    if (step % eval_every == 0 || step == steps) {
      TrainCurvePoint point;
      point.step = step;
      point.loss = loss;
      point.perplexity = std::exp(loss);
      point.accuracy =
          model_.Accuracy(eval_inputs_, eval_labels_, eval_batch_);
      result.curve.push_back(point);
      if (result.steps_to_target < 0 &&
          point.accuracy >= target_accuracy) {
        result.steps_to_target = step;
      }
      result.final_accuracy = point.accuracy;
      result.final_loss = loss;
    }
  }
  return result;
}

}  // namespace hipress
