// Distributed MiniDNN trainer: W logical workers, per-worker data shards,
// real gradient synchronization through the CaSync dataflow (PS or Ring)
// with optional compression + error feedback.
//
// Reproduces the convergence-validation methodology of Figure 13: train the
// same model (a) without compression and (b) with a CompLL algorithm, and
// show both reach the target metric in (approximately) the same number of
// iterations — with the compressed run cheaper per iteration.
#ifndef HIPRESS_SRC_MINIDNN_DIST_TRAINER_H_
#define HIPRESS_SRC_MINIDNN_DIST_TRAINER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/casync/dataflow.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/compress/error_feedback.h"
#include "src/minidnn/mlp.h"

namespace hipress {

// Synthetic K-class Gaussian-cluster classification task.
struct SyntheticTask {
  int input_dim = 16;
  int num_classes = 4;
  float cluster_spread = 0.9f;  // noise stddev around each class mean
  uint64_t seed = 0x7357;

  // Samples a batch: inputs (batch x input_dim) and labels.
  void Sample(Rng& rng, int batch, std::vector<float>* inputs,
              std::vector<int>* labels) const;
};

struct DistTrainConfig {
  int num_workers = 4;
  int batch_per_worker = 32;
  float learning_rate = 0.1f;
  float momentum = 0.9f;
  // Compression: empty = none. Any registry name works ("onebit",
  // "dsl-terngrad", ...).
  std::string algorithm;
  CompressorParams codec_params;
  StrategyKind strategy = StrategyKind::kPs;
  int partitions = 2;
  MlpConfig model;
  SyntheticTask task;
};

struct TrainCurvePoint {
  int step = 0;
  double loss = 0.0;        // training cross-entropy
  double accuracy = 0.0;    // eval accuracy
  double perplexity = 0.0;  // exp(loss) — the LM-style metric of Fig. 13
};

struct DistTrainResult {
  std::vector<TrainCurvePoint> curve;
  int steps_to_target = -1;  // first step reaching target accuracy, or -1
  double final_accuracy = 0.0;
  double final_loss = 0.0;
};

class DistTrainer {
 public:
  static StatusOr<std::unique_ptr<DistTrainer>> Create(
      const DistTrainConfig& config);

  // Runs `steps` synchronized SGD steps, evaluating every `eval_every`
  // steps on a held-out batch. target_accuracy sets steps_to_target.
  StatusOr<DistTrainResult> Train(int steps, int eval_every,
                                  double target_accuracy);

  const Mlp& model() const { return model_; }

  // Wall-clock observability for the real trainer: per-step compute and
  // gradient-synchronization durations ("dist.compute_us", "dist.sync_us"
  // histograms), step counter, and last-loss gauge. Memory-pool health is
  // mirrored after every step: "mem.pool_hits" / "mem.pool_misses" /
  // "mem.bytes_in_use" / "mem.peak_bytes" gauges snapshot the global
  // BufferPool, and "mem.step_pool_misses" holds the miss delta of the
  // last step — zero once the pool is warm (the steady-state invariant).
  const MetricsRegistry& metrics() const { return metrics_; }
  MetricsRegistry& metrics() { return metrics_; }

 private:
  explicit DistTrainer(const DistTrainConfig& config);

  // One synchronized step; returns the mean worker loss.
  StatusOr<double> Step();

  DistTrainConfig config_;
  MetricsRegistry metrics_;
  Mlp model_;
  std::vector<Tensor> velocity_;
  std::unique_ptr<Compressor> codec_;  // null when uncompressed
  // Per-worker error feedback (residuals are local state, Section 2.4's
  // convergence-preserving recipe).
  std::vector<std::unique_ptr<ErrorFeedback>> feedback_;
  std::unique_ptr<DataflowRunner> dataflow_;
  std::vector<Rng> worker_rngs_;
  Rng eval_rng_;
  std::vector<float> eval_inputs_;
  std::vector<int> eval_labels_;
  int eval_batch_ = 256;
  // Per-step scratch, hoisted out of Step() so the sync hot path reuses
  // the same (pool-backed) storage every iteration instead of churning.
  std::vector<std::vector<Tensor>> worker_grads_;
  std::vector<float> sample_inputs_;
  std::vector<int> sample_labels_;
  std::vector<Tensor> sync_inputs_;
  ByteBuffer feedback_scratch_;
  size_t pool_misses_before_step_ = 0;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_MINIDNN_DIST_TRAINER_H_
