#include "src/minidnn/mlp.h"

#include <algorithm>
#include <cmath>

#include "src/common/buffer_pool.h"
#include "src/common/logging.h"

namespace hipress {
namespace {

// Hidden activations for one batch; returned alongside logits so backward
// can reuse them. Pool-backed so the per-step forward/backward passes stop
// allocating once the pool is warm.
struct ForwardState {
  PooledFloats hidden;  // batch x hidden (post-tanh)
  PooledFloats logits;  // batch x output
};

ForwardState RunForward(const MlpConfig& config,
                        const std::vector<Tensor>& params,
                        const std::vector<float>& inputs, int batch,
                        Workspace& ws) {
  const int in = config.input_dim;
  const int hid = config.hidden_dim;
  const int out = config.output_dim;
  const Tensor& w1 = params[0];
  const Tensor& b1 = params[1];
  const Tensor& w2 = params[2];
  const Tensor& b2 = params[3];

  ForwardState state;
  state.hidden = ws.zeroed_floats(static_cast<size_t>(batch) * hid);
  state.logits = ws.zeroed_floats(static_cast<size_t>(batch) * out);
  for (int s = 0; s < batch; ++s) {
    const float* x = &inputs[static_cast<size_t>(s) * in];
    float* h = &state.hidden[static_cast<size_t>(s) * hid];
    for (int j = 0; j < hid; ++j) {
      float sum = b1[j];
      const float* row = w1.data() + static_cast<size_t>(j) * in;
      for (int i = 0; i < in; ++i) {
        sum += row[i] * x[i];
      }
      h[j] = std::tanh(sum);
    }
    float* z = &state.logits[static_cast<size_t>(s) * out];
    for (int k = 0; k < out; ++k) {
      float sum = b2[k];
      const float* row = w2.data() + static_cast<size_t>(k) * hid;
      for (int j = 0; j < hid; ++j) {
        sum += row[j] * h[j];
      }
      z[k] = sum;
    }
  }
  return state;
}

}  // namespace

Mlp::Mlp(const MlpConfig& config) : config_(config) {
  Rng rng(config.init_seed);
  const int in = config.input_dim;
  const int hid = config.hidden_dim;
  const int out = config.output_dim;
  params_.emplace_back("w1", static_cast<size_t>(hid) * in);
  params_.emplace_back("b1", static_cast<size_t>(hid));
  params_.emplace_back("w2", static_cast<size_t>(out) * hid);
  params_.emplace_back("b2", static_cast<size_t>(out));
  // Xavier-style init.
  const float s1 = std::sqrt(2.0f / static_cast<float>(in + hid));
  const float s2 = std::sqrt(2.0f / static_cast<float>(hid + out));
  params_[0].FillGaussian(rng, s1);
  params_[2].FillGaussian(rng, s2);
}

std::vector<float> Mlp::Forward(const std::vector<float>& inputs,
                                int batch) const {
  Workspace ws;
  const ForwardState state = RunForward(config_, params_, inputs, batch, ws);
  return std::vector<float>(state.logits.begin(), state.logits.end());
}

double Mlp::BackwardCrossEntropy(const std::vector<float>& inputs,
                                 const std::vector<int>& labels, int batch,
                                 std::vector<Tensor>* grads) const {
  CHECK_EQ(grads->size(), params_.size());
  const int in = config_.input_dim;
  const int hid = config_.hidden_dim;
  const int out = config_.output_dim;
  Workspace ws;
  const ForwardState state = RunForward(config_, params_, inputs, batch, ws);
  const Tensor& w2 = params_[2];
  Tensor& gw1 = (*grads)[0];
  Tensor& gb1 = (*grads)[1];
  Tensor& gw2 = (*grads)[2];
  Tensor& gb2 = (*grads)[3];

  double total_loss = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  PooledFloats dh = ws.zeroed_floats(hid);
  for (int s = 0; s < batch; ++s) {
    const float* x = &inputs[static_cast<size_t>(s) * in];
    const float* h = &state.hidden[static_cast<size_t>(s) * hid];
    const float* z = &state.logits[static_cast<size_t>(s) * out];
    // Softmax + CE.
    float max_z = z[0];
    for (int k = 1; k < out; ++k) {
      max_z = std::max(max_z, z[k]);
    }
    double denom = 0.0;
    for (int k = 0; k < out; ++k) {
      denom += std::exp(static_cast<double>(z[k] - max_z));
    }
    const int label = labels[s];
    total_loss +=
        -(static_cast<double>(z[label] - max_z) - std::log(denom));

    std::fill(dh.begin(), dh.end(), 0.0f);
    for (int k = 0; k < out; ++k) {
      const float p = static_cast<float>(
          std::exp(static_cast<double>(z[k] - max_z)) / denom);
      const float dz = (p - (k == label ? 1.0f : 0.0f)) * inv_batch;
      gb2[k] += dz;
      float* gw2_row = gw2.data() + static_cast<size_t>(k) * hid;
      const float* w2_row = w2.data() + static_cast<size_t>(k) * hid;
      for (int j = 0; j < hid; ++j) {
        gw2_row[j] += dz * h[j];
        dh[j] += dz * w2_row[j];
      }
    }
    for (int j = 0; j < hid; ++j) {
      const float dt = dh[j] * (1.0f - h[j] * h[j]);  // tanh'
      gb1[j] += dt;
      float* gw1_row = gw1.data() + static_cast<size_t>(j) * in;
      for (int i = 0; i < in; ++i) {
        gw1_row[i] += dt * x[i];
      }
    }
  }
  return total_loss / batch;
}

double Mlp::Accuracy(const std::vector<float>& inputs,
                     const std::vector<int>& labels, int batch) const {
  const std::vector<float> logits = Forward(inputs, batch);
  const int out = config_.output_dim;
  int correct = 0;
  for (int s = 0; s < batch; ++s) {
    const float* z = &logits[static_cast<size_t>(s) * out];
    int best = 0;
    for (int k = 1; k < out; ++k) {
      if (z[k] > z[best]) {
        best = k;
      }
    }
    if (best == labels[s]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / batch;
}

std::vector<Tensor> Mlp::MakeGradients() const {
  std::vector<Tensor> grads;
  grads.reserve(params_.size());
  for (const Tensor& param : params_) {
    grads.emplace_back(param.name(), param.size());
  }
  return grads;
}

void Mlp::ApplySgd(const std::vector<Tensor>& grads, float lr, float momentum,
                   std::vector<Tensor>* velocity) {
  if (velocity->empty()) {
    *velocity = MakeGradients();
  }
  for (size_t p = 0; p < params_.size(); ++p) {
    Tensor& param = params_[p];
    Tensor& v = (*velocity)[p];
    const Tensor& g = grads[p];
    for (size_t i = 0; i < param.size(); ++i) {
      v[i] = momentum * v[i] + g[i];
      param[i] -= lr * v[i];
    }
  }
}

}  // namespace hipress
