// Named system presets: the baselines and HiPress configurations the
// evaluation compares (Section 6.1).
//
//   byteps            BytePS: PS, no compression, 4 MB partitions, extra
//                     staging copies, no coordinated bulk communication.
//   ring              Horovod Ring-allreduce: 64 MB fusion buffers, ring
//                     chunking, no compression.
//   byteps-oss        BytePS(OSS-<alg>): BytePS plus a compression algorithm
//                     wired in the OSS style — encode/decode serialized
//                     against transfers (no pipelining), everything
//                     compressed, no partitioning decisions.
//   byteps-cpu        Same but with the on-CPU codec (Figure 11's "on-CPU").
//   ring-oss          Ring(OSS-<alg>): fused ring with compression at every
//                     hop, serialized (the TensorFlow DGC pull request).
//   hipress-ps        HiPress CaSync-PS: compression-aware PS with
//                     pipelining, bulk communication and SeCoPa.
//   hipress-ring      HiPress CaSync-Ring.
//
// Cluster specs mirror the paper's two testbeds.
#ifndef HIPRESS_SRC_STRATEGIES_PRESETS_H_
#define HIPRESS_SRC_STRATEGIES_PRESETS_H_

#include <string>

#include "src/casync/config.h"
#include "src/common/status.h"

namespace hipress {

struct ClusterSpec {
  int num_nodes = 16;
  int gpus_per_node = 8;
  GpuPlatform platform = GpuPlatform::kV100;
  NetworkConfig net;
  double intra_node_bytes_per_sec = 150e9;

  // 16 p3dn.24xlarge: 8 V100 (NVLink), 100 Gbps, EFA RDMA.
  static ClusterSpec Ec2(int num_nodes = 16);
  // Local cluster: 2x 1080 Ti (PCIe switch), 56 Gbps InfiniBand RDMA.
  static ClusterSpec Local(int num_nodes = 16);
};

// Degraded network for systems running without RDMA (BytePS does not
// support EC2's EFA, Section 6.1): TCP stack overheads and lower effective
// per-flow bandwidth.
NetworkConfig WithoutRdma(NetworkConfig net);

// Builds the SyncConfig for `system` on `cluster`. `algorithm` selects the
// compression codec for compression-enabled systems (ignored otherwise).
StatusOr<SyncConfig> MakeSystemConfig(const std::string& system,
                                      const ClusterSpec& cluster,
                                      const std::string& algorithm = "onebit",
                                      const CompressorParams& params = {});

}  // namespace hipress

#endif  // HIPRESS_SRC_STRATEGIES_PRESETS_H_
