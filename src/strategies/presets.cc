#include "src/strategies/presets.h"

namespace hipress {

ClusterSpec ClusterSpec::Ec2(int num_nodes) {
  ClusterSpec spec;
  spec.num_nodes = num_nodes;
  spec.gpus_per_node = 8;
  spec.platform = GpuPlatform::kV100;
  // 100 Gbps EFA; effective per-flow goodput derated to ~75% of line rate
  // (protocol + incast effects measured on p3dn instances).
  spec.net.link_bandwidth = Bandwidth::Gbps(75.0);
  spec.net.latency = FromMicros(20.0);
  spec.net.per_message_overhead = FromMicros(12.0);
  spec.intra_node_bytes_per_sec = 150e9;  // NVLink
  return spec;
}

ClusterSpec ClusterSpec::Local(int num_nodes) {
  ClusterSpec spec;
  spec.num_nodes = num_nodes;
  spec.gpus_per_node = 2;
  spec.platform = GpuPlatform::k1080Ti;
  // 56 Gbps InfiniBand, RDMA verbs.
  spec.net.link_bandwidth = Bandwidth::Gbps(44.0);
  spec.net.latency = FromMicros(5.0);
  spec.net.per_message_overhead = FromMicros(15.0);
  spec.intra_node_bytes_per_sec = 10e9;  // PCIe switch
  return spec;
}

NetworkConfig WithoutRdma(NetworkConfig net) {
  net.link_bandwidth.bits_per_second *= 0.93;
  net.latency *= 3;
  net.per_message_overhead *= 3;
  return net;
}

StatusOr<SyncConfig> MakeSystemConfig(const std::string& system,
                                      const ClusterSpec& cluster,
                                      const std::string& algorithm,
                                      const CompressorParams& params) {
  SyncConfig config;
  config.num_nodes = cluster.num_nodes;
  config.gpus_per_node = cluster.gpus_per_node;
  config.platform = cluster.platform;
  config.net = cluster.net;
  config.intra_node_bytes_per_sec = cluster.intra_node_bytes_per_sec;
  config.algorithm = algorithm;
  config.codec_params = params;

  if (system == "byteps") {
    config.strategy = StrategyKind::kPs;
    config.compression = false;
    config.pipelining = true;
    config.bulk = false;
    config.secopa = false;
    config.ps_partition_bytes = 4 * kMiB;
    config.extra_copy_overhead = FromMicros(10.0);
    return config;
  }
  if (system == "ring") {
    config.strategy = StrategyKind::kRing;
    // NCCL's ring protocol sustains ~85% of the verbs-level goodput.
    config.net.link_bandwidth.bits_per_second *= 0.85;
    config.compression = false;
    config.pipelining = true;
    config.bulk = false;
    config.secopa = false;
    config.ring_fusion_bytes = 64 * kMiB;
    config.sequential_collectives = true;
    config.per_gradient_negotiation = FromMicros(400.0);
    return config;
  }
  if (system == "byteps-oss") {
    config.strategy = StrategyKind::kPs;
    config.compression = true;
    config.codec_impl = CodecImpl::kOss;
    config.pipelining = false;  // compression serialized on the sync path
    config.bulk = false;
    config.secopa = false;
    config.fixed_partitions = 4;  // BytePS slices, compression per slice
    config.extra_copy_overhead = FromMicros(10.0);
    return config;
  }
  if (system == "byteps-cpu") {
    config.strategy = StrategyKind::kPs;
    config.compression = true;
    config.codec_impl = CodecImpl::kCpu;
    config.pipelining = false;
    config.bulk = false;
    config.secopa = false;
    config.fixed_partitions = 4;
    config.extra_copy_overhead = FromMicros(10.0);
    return config;
  }
  if (system == "byteps-cpu-simd") {
    // Same topology as byteps-cpu but with the vectorized CPU kernels
    // (CodecImpl::kCpuSimd) — what the BytePS CPU path looks like once the
    // hand-tuned AVX2/AVX-512 codecs replace the scalar loops.
    config.strategy = StrategyKind::kPs;
    config.compression = true;
    config.codec_impl = CodecImpl::kCpuSimd;
    config.pipelining = false;
    config.bulk = false;
    config.secopa = false;
    config.fixed_partitions = 4;
    config.extra_copy_overhead = FromMicros(10.0);
    return config;
  }
  if (system == "ring-oss") {
    config.strategy = StrategyKind::kRing;
    config.net.link_bandwidth.bits_per_second *= 0.85;
    config.compression = true;
    config.codec_impl = CodecImpl::kOss;
    config.pipelining = false;
    config.codec_on_compute_stream = false;  // TF side queue
    config.bulk = false;
    config.secopa = false;
    config.ring_fusion_bytes = 64 * kMiB;
    config.sequential_collectives = true;
    config.per_gradient_negotiation = FromMicros(400.0);
    config.fixed_partitions = cluster.num_nodes;
    return config;
  }
  if (system == "hipress-ps") {
    config.strategy = StrategyKind::kPs;
    config.compression = true;
    config.codec_impl = CodecImpl::kCompLL;
    config.pipelining = true;
    config.bulk = true;
    config.secopa = true;
    return config;
  }
  if (system == "hipress-tree") {
    // Generality demonstration: CaSync over a binomial-tree topology.
    config.strategy = StrategyKind::kTree;
    config.compression = true;
    config.codec_impl = CodecImpl::kCompLL;
    config.pipelining = true;
    config.bulk = true;
    config.secopa = true;
    return config;
  }
  if (system == "hipress-ring") {
    config.strategy = StrategyKind::kRing;
    config.compression = true;
    config.codec_impl = CodecImpl::kCompLL;
    config.pipelining = true;
    config.bulk = true;
    config.secopa = true;
    return config;
  }
  return NotFoundError("unknown system preset: " + system);
}

}  // namespace hipress
