#include "src/train/trainer.h"

#include <algorithm>
#include <cstring>

#include "src/casync/builder.h"
#include "src/casync/engine.h"
#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/compress/registry.h"
#include "src/net/membership.h"
#include "src/net/network.h"
#include "src/sim/simulator.h"

namespace hipress {
namespace {

// One gradient (or Horovod-style fusion bucket) to synchronize.
struct SyncUnit {
  uint64_t bytes = 0;
  SimTime ready_offset = 0;  // from backward start, incl. local aggregation
  int members = 1;           // gradients fused into this unit
  GradientSync plan;
};

// Intra-node aggregation across the node's `g` GPUs over NVLink/PCIe:
// ring reduce-scatter + allgather inside the node.
SimTime LocalAggregationTime(uint64_t bytes, const SyncConfig& config) {
  const int g = config.gpus_per_node;
  if (g <= 1) {
    return 0;
  }
  const double volume = 2.0 * (g - 1) / g * static_cast<double>(bytes);
  return FromMicros(20.0) +
         static_cast<SimTime>(volume / config.intra_node_bytes_per_sec *
                              static_cast<double>(kSecond));
}

// Static feasibility walk over the crash + membership schedule: joins only
// admit non-members, leaves only remove members, rejoins need a prior
// crash, and the view never empties. Detection timing is dynamic, but the
// node sets are decidable up front.
Status ValidateMembershipSchedule(int num_nodes, const FaultConfig& faults) {
  std::vector<bool> standby(static_cast<size_t>(num_nodes), false);
  for (const int node : faults.standby_nodes) {
    if (node < 0 || node >= num_nodes) {
      return InvalidArgumentError(
          StrFormat("standby node %d out of range", node));
    }
    if (standby[node]) {
      return InvalidArgumentError(
          StrFormat("standby node %d listed twice", node));
    }
    standby[node] = true;
  }
  std::vector<bool> member(static_cast<size_t>(num_nodes), false);
  std::vector<bool> crashed(static_cast<size_t>(num_nodes), false);
  int members = 0;
  for (int node = 0; node < num_nodes; ++node) {
    member[node] = !standby[node];
    members += member[node] ? 1 : 0;
  }
  if (members == 0) {
    return InvalidArgumentError("every node is standby");
  }
  struct WalkEvent {
    SimTime at = 0;
    int order = 0;  // crashes sort before membership events at equal time
    int node = -1;
    MembershipEventKind kind = MembershipEventKind::kJoin;
  };
  std::vector<WalkEvent> walk;
  for (const NodeCrash& crash : faults.crashes) {
    walk.push_back(WalkEvent{crash.at, 0, crash.node, {}});
  }
  for (const MembershipEvent& event : faults.membership) {
    if (event.node < 0 || event.node >= num_nodes) {
      return InvalidArgumentError(StrFormat(
          "%s node %d out of range", MembershipEventKindName(event.kind),
          event.node));
    }
    walk.push_back(WalkEvent{event.at, 1, event.node, event.kind});
  }
  std::sort(walk.begin(), walk.end(),
            [](const WalkEvent& a, const WalkEvent& b) {
              return a.at != b.at     ? a.at < b.at
                     : a.order != b.order ? a.order < b.order
                                          : a.node < b.node;
            });
  for (const WalkEvent& event : walk) {
    if (event.order == 0) {  // crash
      if (member[event.node]) {
        member[event.node] = false;
        if (--members == 0) {
          return InvalidArgumentError("crash schedule empties the cluster");
        }
      }
      crashed[event.node] = true;
      continue;
    }
    switch (event.kind) {
      case MembershipEventKind::kJoin:
        if (member[event.node]) {
          return InvalidArgumentError(
              StrFormat("join of current member %d", event.node));
        }
        if (crashed[event.node]) {
          return InvalidArgumentError(StrFormat(
              "join of crashed node %d (use rejoin)", event.node));
        }
        member[event.node] = true;
        ++members;
        break;
      case MembershipEventKind::kLeave:
        if (!member[event.node]) {
          return InvalidArgumentError(
              StrFormat("leave of non-member %d", event.node));
        }
        member[event.node] = false;
        if (--members == 0) {
          return InvalidArgumentError("leave schedule empties the cluster");
        }
        break;
      case MembershipEventKind::kRejoin:
        if (!crashed[event.node]) {
          return InvalidArgumentError(StrFormat(
              "rejoin of node %d without a prior crash", event.node));
        }
        crashed[event.node] = false;
        member[event.node] = true;
        ++members;
        break;
    }
  }
  return OkStatus();
}

}  // namespace

StatusOr<TrainReport> SimulateTraining(const ModelProfile& model,
                                       const SyncConfig& config,
                                       const TrainOptions& options) {
  if (model.gradient_bytes.empty()) {
    return InvalidArgumentError("model has no gradients");
  }
  if (config.num_nodes < 1) {
    return InvalidArgumentError("need at least one node");
  }
  const FaultConfig& faults = config.net.faults;
  const bool membership_active =
      !faults.membership.empty() || !faults.standby_nodes.empty();
  if ((!faults.crashes.empty() || membership_active) &&
      (options.staleness > 0 || config.sequential_collectives)) {
    return InvalidArgumentError(
        "node-crash recovery and elastic membership are only supported on "
        "the BSP concurrent-collectives path (staleness == 0, "
        "sequential_collectives off)");
  }
  if (membership_active || !faults.crashes.empty()) {
    const Status schedule_ok =
        ValidateMembershipSchedule(config.num_nodes, faults);
    if (!schedule_ok.ok()) {
      return schedule_ok;
    }
  }
  if (options.adaptive.enabled) {
    if (!config.compression || !config.secopa) {
      return InvalidArgumentError(
          "adaptive compression re-plans the SeCoPa cutoffs; enable "
          "compression with secopa");
    }
    if (options.staleness > 0 || config.sequential_collectives) {
      return InvalidArgumentError(
          "adaptive compression swaps plans at BSP iteration boundaries; "
          "it requires staleness == 0 and concurrent collectives");
    }
  }

  const double compute_scale = ComputeScale(config.platform);
  const SimTime forward = static_cast<SimTime>(
      static_cast<double>(model.forward_time_v100) / compute_scale);
  const SimTime backward = static_cast<SimTime>(
      static_cast<double>(model.backward_time_v100) / compute_scale);
  const SimTime compute_time = forward + backward;
  // Straggler: its shard gates every gradient's aggregation, so sync
  // launches follow the slow node's timeline and the barrier waits for its
  // compute.
  const bool has_straggler = options.straggler_node >= 0 &&
                             options.straggler_node < config.num_nodes &&
                             options.straggler_factor > 1.0;
  const double launch_stretch =
      has_straggler ? options.straggler_factor : 1.0;
  const SimTime slowest_compute = static_cast<SimTime>(
      static_cast<double>(compute_time) * launch_stretch);

  // ---------------------------------------------------------------------
  // Per-gradient plans. SeCoPa consults the cost model; baselines compress
  // everything (or nothing) with their fixed partitioning rules.
  // ---------------------------------------------------------------------
  double rate = 1.0;
  if (config.compression) {
    // Rate comes from the real codec so sparse ratios and quantization
    // bitwidths flow through to wire sizes.
    const std::string codec_name =
        config.codec_impl == CodecImpl::kCompLL
            ? config.algorithm
            : (CompressorRegistry::Instance().Contains("oss-" +
                                                       config.algorithm)
                   ? "oss-" + config.algorithm
                   : config.algorithm);
    ASSIGN_OR_RETURN(auto codec,
                     CreateCompressor(codec_name, config.codec_params));
    rate = codec->CompressionRate(1 << 20);
  }
  SeCoPaPlanner planner(config, rate);

  auto plan_gradient = [&](uint32_t id, uint64_t bytes) {
    GradientSync sync;
    sync.id = id;
    sync.bytes = bytes;
    sync.rate = rate;
    if (!config.compression) {
      sync.compress = false;
      sync.partitions =
          config.strategy == StrategyKind::kRing
              ? std::min<int>(config.num_nodes,
                              std::max<int>(1, static_cast<int>(
                                                   bytes / (256 * 1024))))
              : std::max<int>(1, static_cast<int>(
                                     bytes / config.ps_partition_bytes));
      sync.partitions = std::max(1, sync.partitions);
      return sync;
    }
    if (config.secopa) {
      const SyncPlan plan = planner.Plan(bytes);
      sync.compress = plan.compress;
      sync.partitions = plan.partitions;
      return sync;
    }
    // Compression without SeCoPa: compress everything. PS baselines keep
    // their size-based slicing (BytePS compresses per 4 MB slice); ring
    // baselines use natural ring chunking, capped so small gradients are
    // not shredded into sub-header chunks.
    sync.compress = true;
    sync.partitions =
        config.strategy == StrategyKind::kRing
            ? std::min({config.num_nodes, std::max(1, config.fixed_partitions),
                        std::max<int>(1, static_cast<int>(bytes /
                                                          (256 * 1024)))})
            : std::max<int>(1, static_cast<int>(
                                   bytes / config.ps_partition_bytes));
    return sync;
  };

  // ---------------------------------------------------------------------
  // Sync units: per gradient, or per fusion bucket for Horovod-style ring.
  // ---------------------------------------------------------------------
  std::vector<SyncUnit> units;
  if (config.ring_fusion_bytes > 0 &&
      config.strategy == StrategyKind::kRing) {
    uint64_t bucket_bytes = 0;
    SimTime bucket_ready = 0;
    uint32_t bucket_id = 0;
    int bucket_members = 0;
    auto flush = [&]() {
      if (bucket_bytes == 0) {
        return;
      }
      SyncUnit unit;
      unit.bytes = bucket_bytes;
      unit.ready_offset = bucket_ready + LocalAggregationTime(bucket_bytes, config);
      unit.members = bucket_members;
      unit.plan = plan_gradient(bucket_id++, bucket_bytes);
      units.push_back(unit);
      bucket_bytes = 0;
      bucket_ready = 0;
      bucket_members = 0;
    };
    for (size_t i = 0; i < model.gradient_bytes.size(); ++i) {
      bucket_bytes += model.gradient_bytes[i];
      ++bucket_members;
      bucket_ready =
          std::max(bucket_ready, model.GradientReadyOffset(i, compute_scale));
      if (bucket_bytes >= config.ring_fusion_bytes) {
        flush();
      }
    }
    flush();
  } else {
    for (size_t i = 0; i < model.gradient_bytes.size(); ++i) {
      SyncUnit unit;
      unit.bytes = model.gradient_bytes[i];
      unit.ready_offset = model.GradientReadyOffset(i, compute_scale) +
                          LocalAggregationTime(unit.bytes, config);
      unit.plan = plan_gradient(static_cast<uint32_t>(i), unit.bytes);
      units.push_back(unit);
    }
  }

  // ---------------------------------------------------------------------
  // Adaptive controller: candidate codec ladder + initial plans. Rung 0 is
  // the configured codec at the configured bandwidth, so the initial plans
  // are exactly the fixed plans above; the controller only diverges once a
  // decision triggers.
  // ---------------------------------------------------------------------
  std::unique_ptr<AdaptiveController> adaptive;
  if (options.adaptive.enabled) {
    std::vector<AdaptiveCodecOption> ladder;
    AdaptiveCodecOption configured;
    configured.algorithm = config.algorithm;
    configured.impl = config.codec_impl;
    configured.rate = rate;
    configured.speed = planner.codec_speed();
    ladder.push_back(configured);
    for (const std::string& name : options.adaptive.candidate_algorithms) {
      if (name == config.algorithm) {
        continue;
      }
      ASSIGN_OR_RETURN(auto codec, CreateCompressor(name, {}));
      AdaptiveCodecOption option;
      option.algorithm = name;
      option.impl = config.codec_impl;
      option.rate = codec->CompressionRate(1 << 20);
      option.speed = GetCodecSpeed(name, config.codec_impl, config.platform);
      ladder.push_back(option);
    }
    std::vector<uint64_t> unit_bytes;
    unit_bytes.reserve(units.size());
    for (const SyncUnit& unit : units) {
      unit_bytes.push_back(unit.bytes);
    }
    adaptive = std::make_unique<AdaptiveController>(
        config, options.adaptive, std::move(unit_bytes), std::move(ladder));
    for (size_t i = 0; i < units.size(); ++i) {
      units[i].plan = adaptive->plans()[i];
    }
  }

  // ---------------------------------------------------------------------
  // Build the simulated cluster. One metrics registry spans every layer;
  // the span collector (trace rows beyond the GPU) only runs when the
  // caller wants a timeline.
  // ---------------------------------------------------------------------
  auto metrics = std::make_shared<MetricsRegistry>();
  std::shared_ptr<SpanCollector> spans;
  if (options.record_timeline) {
    spans = std::make_shared<SpanCollector>();
  }
  Simulator sim;
  Network net(&sim, config.num_nodes, config.net, metrics.get(), spans.get());
  std::vector<std::unique_ptr<GpuDevice>> gpu_storage;
  std::vector<GpuDevice*> gpus;
  for (int node = 0; node < config.num_nodes; ++node) {
    gpu_storage.push_back(
        std::make_unique<GpuDevice>(&sim, node, 2, metrics.get()));
    if (options.record_timeline) {
      gpu_storage.back()->set_record_timeline(true);
    }
    gpus.push_back(gpu_storage.back().get());
  }
  CaSyncEngine engine(&sim, &net, gpus, config, metrics.get(), spans.get());

  // Always-on black box (docs/OBSERVABILITY.md): every net send/delivery,
  // transport retry, iteration boundary and membership transition appends a
  // 24-byte record to the owning node's ring. Installed as the process
  // fatal hook so a CHECK failure dumps the rings before aborting.
  std::shared_ptr<FlightRecorder> flight;
  uint16_t ev_iter_start = 0;
  uint16_t ev_iter_end = 0;
  uint16_t ev_recovery = 0;
  uint16_t ev_member = 0;
  if (options.observability.flight_recorder) {
    FlightRecorder::Options fr_options;
    fr_options.num_nodes = config.num_nodes;
    fr_options.events_per_node = options.observability.flight_events_per_node;
    fr_options.dump_path = options.observability.flight_dump_path;
    flight = std::make_shared<FlightRecorder>(fr_options);
    ev_iter_start = flight->Intern("iter.start");
    ev_iter_end = flight->Intern("iter.end");
    ev_recovery = flight->Intern("train.recovery");
    ev_member = flight->Intern("member.change");
    net.set_flight_recorder(flight.get());
    if (engine.reliable_channel() != nullptr) {
      engine.reliable_channel()->set_flight_recorder(flight.get());
    }
    FlightRecorder::InstallGlobal(flight.get());
  }

  // Pre-build one task graph per unit; graphs are reusable templates but
  // dependency counters mutate during execution, so build per iteration.
  TrainReport report;
  report.compute_time = compute_time;
  report.total_gpus = config.num_nodes * config.gpus_per_node;
  report.surviving_nodes = config.num_nodes;
  report.metrics = metrics;
  report.spans = spans;
  report.flight = flight;
  Histogram& iteration_ms = metrics->histogram(
      "train.iteration_ms", HistogramBuckets::Exponential(1.0, 2.0, 16));
  Histogram& sync_tail_ms = metrics->histogram(
      "train.sync_tail_ms", HistogramBuckets::Exponential(0.125, 2.0, 16));
  Counter& iterations_counter = metrics->counter("train.iterations");
  Counter& recoveries_counter = metrics->counter("train.recoveries");
  Histogram& recovery_ms = metrics->histogram(
      "train.recovery_ms", HistogramBuckets::Exponential(0.125, 2.0, 16));
  // Max-minus-median of the per-node last-sync-completion offsets for the
  // latest iteration (0 on a balanced cluster; rises under stragglers and
  // degraded links).
  Gauge& straggler_skew = metrics->gauge("train.straggler_skew_ms");
  // Wire-pool misses during the latest iteration (delta of the cumulative
  // net.pool_misses counter): 0 in steady state once every link has
  // flushed a batch — the mem.step_pool_misses invariant, applied to the
  // wire path (batch frames, retransmit payloads, staging copies).
  Gauge& step_wire_pool_misses = metrics->gauge("net.step_pool_misses");
  auto finalize_observability = [&] {
    report.iteration_p50_ms = iteration_ms.Quantile(0.5);
    report.iteration_p95_ms = iteration_ms.Quantile(0.95);
    report.iteration_p99_ms = iteration_ms.Quantile(0.99);
    if (report.cp_attribution.total() > 0) {
      for (int c = 0; c < kNumCpCategories; ++c) {
        const CpCategory category = static_cast<CpCategory>(c);
        metrics->gauge(StrFormat("cp.%s_ms", CpCategoryName(category)))
            .Set(ToMillis(report.cp_attribution[category]));
        metrics->gauge(StrFormat("cp.share.%s", CpCategoryName(category)))
            .Set(report.cp_attribution.Share(category));
      }
    }
    engine.auditor().Publish(metrics.get());
    metrics->gauge("train.failed_nodes")
        .Set(static_cast<double>(report.failed_nodes.size()));
    metrics->gauge("train.surviving_nodes")
        .Set(static_cast<double>(report.surviving_nodes));
    metrics->gauge("train.throughput").Set(report.throughput);
    metrics->gauge("train.scaling_efficiency")
        .Set(report.scaling_efficiency);
    metrics->gauge("train.iteration_ms_last")
        .Set(ToMillis(report.iteration_time));
    metrics->gauge("train.compute_ms").Set(ToMillis(report.compute_time));
    // Scheduler health (docs/TOPOLOGY.md): event volume, sustained event
    // rate and peak queue depth of the run, plus pool misses — the
    // calendar-queue arena should stop allocating once warm.
    metrics->gauge("sim.events_processed")
        .Set(static_cast<double>(sim.events_processed()));
    metrics->gauge("sim.events_per_wall_second")
        .Set(sim.events_per_wall_second());
    metrics->gauge("sim.queue_peak_depth")
        .Set(static_cast<double>(sim.queue_peak_depth()));
    metrics->gauge("sim.sched_pool_misses")
        .Set(static_cast<double>(sim.sched_pool_misses()));
    if (flight) {
      flight->PublishMetrics(metrics.get());
      if (!options.observability.flight_dump_path.empty()) {
        flight->TriggerDump("end-of-run");
      }
    }
    if (options.record_timeline) {
      for (const GpuDevice* gpu : gpus) {
        report.node_timelines.push_back(gpu->timeline());
      }
      metrics->gauge("gpu.node0.compute_utilization")
          .Set(gpus[0]->ComputeUtilization(report.timeline_origin,
                                           sim.now()));
    }
  };

  // -----------------------------------------------------------------------
  // SSP path: iterations pipeline under the staleness bound. Iteration k's
  // compute may start once iteration k-1-staleness has synchronized; the
  // GPU compute stream still serializes successive forwards/backwards, so
  // the win is hiding the sync tail behind the next iteration's compute.
  // -----------------------------------------------------------------------
  if (options.staleness > 0) {
    const int total_iterations = std::max(options.iterations,
                                          options.staleness + 3);
    struct SspState {
      std::vector<bool> sync_done;
      std::vector<SimTime> iteration_end;  // sync completion time
      int started = 0;
    };
    SspState state;
    state.sync_done.assign(total_iterations, false);
    state.iteration_end.assign(total_iterations, 0);
    std::vector<std::unique_ptr<TaskGraph>> all_graphs;

    // Ordered-collectives chain (Horovod semantics hold across iterations
    // too): a unit executes only after every earlier unit finished AND its
    // own gradients are ready.
    struct SequentialChain {
      struct Entry {
        TaskGraph* graph = nullptr;
        SimTime negotiation = 0;
        std::function<void()> on_done;
        bool ready = false;
      };
      std::vector<Entry> entries;
      size_t next = 0;
      bool in_flight = false;
    };
    auto chain = std::make_shared<SequentialChain>();
    // Entries are referenced while in flight; pre-reserve so later
    // iterations' pushes never reallocate.
    chain->entries.reserve(static_cast<size_t>(total_iterations) *
                           units.size());
    auto chain_pump = std::make_shared<std::function<void()>>();
    *chain_pump = [&engine, &sim, chain, chain_pump] {
      if (chain->in_flight || chain->next >= chain->entries.size() ||
          !chain->entries[chain->next].ready) {
        return;
      }
      chain->in_flight = true;
      auto& entry = chain->entries[chain->next];
      ++chain->next;
      sim.Schedule(entry.negotiation, [&engine, &entry, chain, chain_pump] {
        engine.Execute(entry.graph, [&entry, chain, chain_pump] {
          chain->in_flight = false;
          if (entry.on_done) {
            entry.on_done();
          }
          (*chain_pump)();
        });
      });
    };

    std::function<void()> start_ready_iterations = [&] {
      while (state.started < total_iterations) {
        const int k = state.started;
        const int gate = k - 1 - options.staleness;
        if (gate >= 0 && !state.sync_done[gate]) {
          return;
        }
        ++state.started;
        // Compute queues FIFO on the device; its actual start time is the
        // stream's free time, which all launch offsets key off.
        const SimTime compute_start =
            std::max(sim.now(), gpus[0]->stream_free_at(
                                    GpuDevice::kComputeStream));
        for (int node = 0; node < config.num_nodes; ++node) {
          gpus[node]->SubmitCompute(compute_time, [] {});
        }
        auto remaining = std::make_shared<size_t>(units.size());
        auto unit_done = [remaining, k, &state, &sim,
                          &start_ready_iterations] {
          if (--*remaining == 0) {
            state.sync_done[k] = true;
            state.iteration_end[k] = sim.now();
            start_ready_iterations();
          }
        };
        for (const SyncUnit& unit : units) {
          auto graph = std::make_unique<TaskGraph>();
          AppendSyncTasks(config, unit.plan, graph.get());
          TaskGraph* graph_ptr = graph.get();
          all_graphs.push_back(std::move(graph));
          const SimTime launch_at = compute_start + forward +
                                    unit.ready_offset +
                                    options.launch_overhead;
          if (config.sequential_collectives) {
            chain->entries.push_back(SequentialChain::Entry{
                graph_ptr, unit.members * config.per_gradient_negotiation,
                unit_done, false});
            const size_t index = chain->entries.size() - 1;
            sim.ScheduleAt(std::max(launch_at, sim.now()),
                           [chain, index, chain_pump] {
              chain->entries[index].ready = true;
              (*chain_pump)();
            });
            continue;
          }
          sim.ScheduleAt(std::max(launch_at, sim.now()),
                         [&engine, graph_ptr, unit_done] {
            engine.Execute(graph_ptr, unit_done);
          });
        }
      }
    };
    sim.Schedule(0, start_ready_iterations);
    sim.Run();

    // Steady-state average over the pipelined window (skip iteration 0).
    const SimTime first_end = state.iteration_end[0];
    const SimTime last_end = state.iteration_end[total_iterations - 1];
    const SimTime average =
        (last_end - first_end) / (total_iterations - 1);
    report.iteration_time = average;
    const double seconds = ToSeconds(average);
    if (seconds > 0) {
      report.throughput = static_cast<double>(report.total_gpus) *
                          model.batch_per_gpu / seconds;
      report.scaling_efficiency = static_cast<double>(compute_time) /
                                  static_cast<double>(average);
    }
    for (int k = 1; k < total_iterations; ++k) {
      iterations_counter.Increment();
      iteration_ms.Observe(
          ToMillis(state.iteration_end[k] - state.iteration_end[k - 1]));
    }
    report.engine_stats = engine.stats();
    finalize_observability();
    return report;
  }

  // ---------------------------------------------------------------------
  // Elastic membership (docs/FAULT_TOLERANCE.md). The manager keeps an
  // epoch-numbered view of the live worker set; scheduled joins/leaves and
  // crash rejoins apply at iteration boundaries (the engine is idle, so
  // plans rebuild and the channel epoch advances without touching
  // in-flight graphs). Each node carries a small replicated model state
  // whose per-iteration delta is a pure function of (seed, iteration):
  // live replicas stay bit-identical, a crashed replica is invalidated
  // until a donor re-sync restores it, and a churned run must finish with
  // exactly the churn-free run's state — the chaos-soak gate.
  // ---------------------------------------------------------------------
  MembershipManager membership(config.num_nodes, faults.standby_nodes,
                               metrics.get());
  std::vector<int> current_members = membership.members();
  constexpr size_t kStateFloats = 32;
  constexpr size_t kStateBytes = kStateFloats * sizeof(float);
  const uint64_t state_seed = faults.seed ^ 0x6d6f64656cULL;  // "model"
  std::vector<std::vector<float>> model_state(
      static_cast<size_t>(config.num_nodes));
  std::vector<bool> state_valid(static_cast<size_t>(config.num_nodes),
                                false);
  for (int node = 0; node < config.num_nodes; ++node) {
    model_state[node].resize(kStateFloats);
    for (size_t j = 0; j < kStateFloats; ++j) {
      model_state[node][j] = static_cast<float>(FaultUniform(state_seed, j));
    }
  }
  for (const int node : current_members) {
    state_valid[node] = true;
  }
  uint64_t model_bytes = 0;
  for (const uint64_t bytes : model.gradient_bytes) {
    model_bytes += bytes;
  }
  std::vector<bool> crash_processed(faults.crashes.size(), false);
  std::vector<bool> rejoined(static_cast<size_t>(config.num_nodes), false);
  std::vector<MembershipEvent> schedule = faults.membership;
  std::sort(schedule.begin(), schedule.end(),
            [](const MembershipEvent& a, const MembershipEvent& b) {
              return a.at != b.at ? a.at < b.at : a.node < b.node;
            });
  size_t next_event = 0;
  MembershipReport mreport;
  mreport.enabled = membership_active;
  Counter& resyncs_counter = metrics->counter("membership.resyncs");
  Counter& resync_bytes_counter = metrics->counter("membership.resync_bytes");
  Counter& drains_counter = metrics->counter("membership.drains");
  Counter& rejoined_contrib_counter =
      metrics->counter("membership.rejoined_contributions");
  Counter& pool_trimmed_counter =
      metrics->counter("membership.pool_trimmed_bytes");
  Histogram& resync_ms = metrics->histogram(
      "membership.resync_ms", HistogramBuckets::Exponential(0.125, 2.0, 16));
  Histogram& drain_ms = metrics->histogram(
      "membership.drain_ms", HistogramBuckets::Exponential(0.125, 2.0, 16));
  ReliableChannel* channel = engine.reliable_channel();

  // Re-price every unit's <compress?, K> over a live view of `live_nodes`
  // members (the SeCoPa cost terms and 2N partition cap depend on the
  // view size). The adaptive controller owns this when enabled.
  SyncConfig elastic_config = config;
  auto replan_units = [&](int live_nodes) {
    if (!config.compression || !config.secopa) {
      return;
    }
    elastic_config.num_nodes = live_nodes;
    const SeCoPaPlanner live_planner(elastic_config, rate);
    for (SyncUnit& unit : units) {
      const SyncPlan plan = live_planner.Plan(unit.bytes);
      unit.plan.compress = plan.compress;
      unit.plan.partitions = plan.partitions;
    }
  };

  // Ships `bytes` of state from src to dst over the pooled wire path
  // (ReliableChannel when present — always, under fault injection) and
  // runs the simulator to quiescence; returns the transfer's duration.
  // The payload carries src's replicated model state; `copy_state`
  // installs it on dst at delivery (donor re-sync), while drain handoffs
  // only account the wire time.
  auto transfer_state = [&](int src, int dst, uint64_t bytes,
                            bool copy_state) {
    const SimTime started = sim.now();
    const std::span<const uint8_t> view(
        reinterpret_cast<const uint8_t*>(model_state[src].data()),
        kStateBytes);
    NetMessage message;
    message.src = src;
    message.dst = dst;
    message.bytes = std::max<uint64_t>(1, bytes);
    message.tag = 0xe1a0000 + static_cast<uint64_t>(membership.epoch());
    message.payload = MakePooledPayload(view, net.wire_pool());
    auto on_deliver = [&model_state, &state_valid, dst, copy_state,
                       kStateBytes](const NetMessage& delivered) {
      if (!copy_state) {
        return;
      }
      auto payload =
          std::static_pointer_cast<PooledBytes>(delivered.payload);
      std::memcpy(model_state[dst].data(), payload->data(),
                  std::min<size_t>(payload->size(), kStateBytes));
      state_valid[dst] = true;
    };
    if (channel != nullptr) {
      channel->Send(std::move(message), on_deliver, [](const Status&) {});
    } else {
      net.Send(std::move(message), on_deliver);
    }
    sim.Run();
    return sim.now() - started;
  };

  // Ground-truth crash bookkeeping: a replica inside a crash window loses
  // its state (until re-synced) whether or not the transport has blamed
  // the node yet.
  auto invalidate_crashed = [&](SimTime upto) {
    for (size_t c = 0; c < faults.crashes.size(); ++c) {
      if (!crash_processed[c] && faults.crashes[c].at <= upto) {
        crash_processed[c] = true;
        state_valid[faults.crashes[c].node] = false;
      }
    }
  };

  // Applies crash evictions and due membership events at an iteration
  // boundary, then re-plans over the new view, advances the channel
  // epoch, and trims the wire pool when the view shrank.
  auto process_boundary = [&](SimTime boundary) {
    bool changed = false;
    invalidate_crashed(sim.now());
    // Crash detections from the reliable transport become membership
    // evictions.
    for (const int node : engine.failed_nodes()) {
      if (membership.is_member(node) && membership.size() > 1) {
        membership.Remove(node, MembershipChange::kCrash, sim.now());
        changed = true;
        if (spans) {
          spans->Add(node, kTraceLaneMembership,
                     StrFormat("crash node %d", node), sim.now(), sim.now());
        }
      }
    }
    while (next_event < schedule.size() &&
           schedule[next_event].at <= boundary) {
      const MembershipEvent event = schedule[next_event++];
      if (event.at > sim.now()) {
        // Apply the transition at its scheduled time — a rejoin's crash
        // window only closes at event.at, so an earlier re-sync would send
        // into the blackhole.
        sim.ScheduleAt(event.at, [] {});
        sim.Run();
      }
      switch (event.kind) {
        case MembershipEventKind::kLeave: {
          if (!membership.is_member(event.node) || membership.size() <= 1) {
            break;  // crashed before its planned leave; nothing to drain
          }
          // Planned drain: in-flight units already completed (the engine
          // is idle at a boundary); the leaver ships its partition share
          // to the lowest-id remaining member, then exits cleanly.
          int successor = -1;
          for (const int member : membership.members()) {
            if (member != event.node) {
              successor = member;
              break;
            }
          }
          const uint64_t share = model_bytes /
                                 static_cast<uint64_t>(membership.size());
          const SimTime took =
              transfer_state(event.node, successor, share, false);
          membership.Remove(event.node, MembershipChange::kLeave, sim.now());
          state_valid[event.node] = false;
          drains_counter.Increment();
          drain_ms.Observe(ToMillis(took));
          mreport.resync_time += took;
          if (spans) {
            spans->Add(event.node, kTraceLaneMembership,
                       StrFormat("leave node %d (drain)", event.node),
                       sim.now() - took, sim.now());
          }
          changed = true;
          break;
        }
        case MembershipEventKind::kJoin:
        case MembershipEventKind::kRejoin: {
          const bool is_rejoin = event.kind == MembershipEventKind::kRejoin;
          if (is_rejoin && membership.is_member(event.node)) {
            // The crash this rejoin answers was never detected (no traffic
            // touched the corpse); evict it first so the epoch history
            // reflects the full crash->rejoin cycle.
            membership.Remove(event.node, MembershipChange::kCrash,
                              sim.now());
          }
          if (membership.is_member(event.node)) {
            break;  // duplicate admit; validation rejects hand-written ones
          }
          if (is_rejoin) {
            engine.ReviveNode(event.node);
          }
          // Donor re-sync: the lowest-id member streams current model
          // state to the (re)joining node over the pooled wire path.
          const int donor = membership.members().front();
          const SimTime took =
              transfer_state(donor, event.node, model_bytes, true);
          membership.Admit(event.node,
                           is_rejoin ? MembershipChange::kRejoin
                                     : MembershipChange::kJoin,
                           sim.now());
          resyncs_counter.Increment();
          resync_bytes_counter.Increment(model_bytes);
          ++mreport.resyncs;
          mreport.resync_bytes += model_bytes;
          mreport.resync_time += took;
          resync_ms.Observe(ToMillis(took));
          if (is_rejoin) {
            rejoined[event.node] = true;
          }
          if (spans) {
            spans->Add(event.node, kTraceLaneMembership,
                       StrFormat("%s node %d (resync from %d)",
                                 is_rejoin ? "rejoin" : "join", event.node,
                                 donor),
                       sim.now() - took, sim.now());
          }
          changed = true;
          break;
        }
      }
    }
    if (!changed) {
      return;
    }
    const int old_size = static_cast<int>(current_members.size());
    current_members = membership.members();
    const int new_size = membership.size();
    if (flight) {
      flight->Record(0, ev_member, sim.now(), membership.epoch(),
                     static_cast<uint64_t>(new_size));
    }
    if (channel != nullptr) {
      // Messages stamped under the old view are now stale on delivery.
      channel->set_epoch(membership.epoch());
    }
    if (adaptive) {
      if (adaptive->OnMembershipChange(new_size)) {
        for (size_t i = 0; i < units.size(); ++i) {
          units[i].plan = adaptive->plans()[i];
        }
      }
    } else if (new_size != old_size) {
      replan_units(new_size);
    }
    if (new_size < old_size) {
      // Shrunken view: release the wire pool's peak-size buckets but keep
      // the proportional warm share so the smaller cluster stays miss-free
      // (watermark Trim, docs/MEMORY.md).
      const BufferPool::Stats wire = net.wire_pool()->stats();
      const size_t keep = static_cast<size_t>(wire.free_bytes) *
                          static_cast<size_t>(new_size) /
                          static_cast<size_t>(old_size);
      pool_trimmed_counter.Increment(net.wire_pool()->Trim(keep));
    }
  };

  // Windowed telemetry + health watchdog (docs/OBSERVABILITY.md): series
  // are fed once per iteration boundary — the trainer-observed signals
  // directly, the attached registry metrics via SampleAll — and the rules
  // compare each iteration's newest window against the run's own rolling
  // history, so trips replay deterministically for a fixed seed.
  TimeSeriesHub hub;
  std::unique_ptr<HealthMonitor> watchdog;
  CostSampleStats send_stats_prev;
  if (options.observability.watchdog) {
    hub.AttachCounter(metrics.get(), "net.retries");
    hub.AttachCounter(metrics.get(), "net.pool_misses");
    hub.AttachGauge(metrics.get(), "sim.queue_depth");
    hub.AttachGauge(metrics.get(), "cp.share.send");
    if (adaptive) {
      hub.AttachGauge(metrics.get(), "adaptive.observed_gbps");
    }
    watchdog = std::make_unique<HealthMonitor>(&hub, metrics.get(),
                                               flight.get());
    for (HealthRule& rule : HealthMonitor::DefaultTrainerRules()) {
      watchdog->AddRule(std::move(rule));
    }
    // A trip is exactly the moment the black box exists for.
    watchdog->set_on_trip([&flight](const HealthRule&) {
      if (flight) {
        flight->TriggerDump("watchdog-trip");
      }
    });
  }

  SimTime iter_start = 0;
  SimTime measured_iter_time = 0;
  SimTime measured_uplink_busy = 0;
  SimTime measured_downlink_busy = 0;
  SimTime measured_sync_tail = 0;
  SimTime measured_sync_span = 0;

  std::vector<std::unique_ptr<TaskGraph>> graphs;
  for (int iteration = 0; iteration < options.iterations; ++iteration) {
    graphs.clear();
    size_t remaining = units.size();
    SimTime iteration_end = 0;
    // First failure detection this iteration (-1: none); closes the
    // recovery window when the degraded BSP barrier completes.
    SimTime recovery_started_at = -1;
    const SimTime uplink_busy_before = net.uplink_busy(0);
    const SimTime downlink_busy_before = net.downlink_busy(0);
    const EngineStats stats_before = engine.stats();
    const uint64_t wire_misses_before = net.wire_pool()->stats().misses;
    const bool measured = iteration == options.iterations - 1;
    // Stray coordinator-timeout events can fire slightly after the last
    // sync completes; align the next iteration start past them.
    iter_start = std::max(iter_start, sim.now());
    // Membership transitions apply here, between iterations: the engine is
    // idle, so evictions, drains and donor re-syncs cannot race in-flight
    // graphs. Re-sync wire time pushes the boundary out.
    process_boundary(iter_start);
    iter_start = std::max(iter_start, sim.now());
    if (flight) {
      flight->Record(0, ev_iter_start, iter_start,
                     static_cast<uint64_t>(iteration));
    }
    if (measured && options.record_timeline) {
      report.timeline_origin = iter_start;
    }

    // One starter event at the iteration boundary submits compute and arms
    // the per-gradient sync launches, so all offsets are iteration-relative.
    sim.ScheduleAt(iter_start, [&] {
      // The current membership view, minus any node the transport declared
      // failed since the boundary; failed or departed nodes neither compute
      // nor participate in synchronization.
      std::vector<int> alive;
      alive.reserve(current_members.size());
      for (const int node : current_members) {
        if (!engine.node_failed(node)) {
          alive.push_back(node);
        }
      }
      const bool full_strength =
          static_cast<int>(alive.size()) == config.num_nodes;
      // Forward + backward occupy the compute stream on every live node.
      for (const int node : alive) {
        const SimTime node_compute =
            node == options.straggler_node ? slowest_compute : compute_time;
        gpus[node]->SubmitCompute(node_compute, [] {});
        if (rejoined[node]) {
          // A node that crashed, re-synced and rejoined is computing again.
          rejoined_contrib_counter.Increment();
        }
      }
      // Build the per-unit sync graphs up front, over the survivors when
      // already degraded.
      std::vector<TaskGraph*> graph_ptrs;
      for (const SyncUnit& unit : units) {
        auto graph = std::make_unique<TaskGraph>();
        if (full_strength) {
          AppendSyncTasks(config, unit.plan, graph.get());
        } else {
          AppendSyncTasksOver(config, unit.plan, alive, graph.get());
        }
        graph_ptrs.push_back(graph.get());
        graphs.push_back(std::move(graph));
      }

      auto complete_one = [&remaining, &sim, &iteration_end] {
        if (--remaining == 0) {
          iteration_end = sim.now();
        }
      };

      if (!config.sequential_collectives) {
        // CaSync: every gradient's graph launches the moment it is ready;
        // graphs execute concurrently and pipeline. A graph cancelled by a
        // peer failure is rebuilt over the survivors and re-executed, so
        // the BSP barrier completes degraded instead of hanging.
        auto execute_unit =
            std::make_shared<std::function<void(size_t, TaskGraph*)>>();
        *execute_unit = [&engine, &sim, &config, &units, &graphs, &report,
                         &recovery_started_at, &recoveries_counter,
                         &current_members, complete_one,
                         execute_unit](size_t i, TaskGraph* graph_ptr) {
          engine.Execute(
              graph_ptr,
              [&engine, &sim, &config, &units, &graphs, &report,
               &recovery_started_at, &recoveries_counter, &current_members,
               complete_one, execute_unit, i](const Status& status) {
                if (status.ok()) {
                  complete_one();
                  return;
                }
                // Peer failure: recovery. Rebuild this unit's topology over
                // the surviving members and run it again.
                if (recovery_started_at < 0) {
                  recovery_started_at = sim.now();
                }
                recoveries_counter.Increment();
                ++report.recoveries;
                std::vector<int> survivors;
                for (const int node : current_members) {
                  if (!engine.node_failed(node)) {
                    survivors.push_back(node);
                  }
                }
                CHECK_GT(survivors.size(), 0u) << "every node failed";
                auto rebuilt = std::make_unique<TaskGraph>();
                AppendSyncTasksOver(config, units[i].plan, survivors,
                                    rebuilt.get());
                TaskGraph* rebuilt_ptr = rebuilt.get();
                graphs.push_back(std::move(rebuilt));
                (*execute_unit)(i, rebuilt_ptr);
              });
        };
        for (size_t i = 0; i < units.size(); ++i) {
          const SimTime launch_at = static_cast<SimTime>(
              static_cast<double>(forward + units[i].ready_offset) *
              launch_stretch) + options.launch_overhead;
          TaskGraph* graph_ptr = graph_ptrs[i];
          sim.Schedule(launch_at, [execute_unit, i, graph_ptr] {
            (*execute_unit)(i, graph_ptr);
          });
        }
      } else {
        // Horovod-style ordered collectives: unit i+1 starts only after
        // unit i's allreduce finished AND its own gradients are ready.
        struct SequentialState {
          size_t next = 0;
          bool in_flight = false;
          std::vector<bool> ready;
        };
        auto state = std::make_shared<SequentialState>();
        state->ready.assign(units.size(), false);
        std::vector<SimTime> negotiation;
        negotiation.reserve(units.size());
        for (const SyncUnit& unit : units) {
          negotiation.push_back(unit.members *
                                config.per_gradient_negotiation);
        }
        auto pump = std::make_shared<std::function<void()>>();
        *pump = [&engine, &sim, graph_ptrs, negotiation, state, complete_one,
                 pump] {
          if (state->in_flight || state->next >= graph_ptrs.size() ||
              !state->ready[state->next]) {
            return;
          }
          state->in_flight = true;
          const size_t index = state->next;
          ++state->next;
          TaskGraph* graph_ptr = graph_ptrs[index];
          // Per-tensor negotiation happens on the critical path between
          // collectives (Horovod's coordination cycle).
          sim.Schedule(negotiation[index],
                       [&engine, graph_ptr, state, complete_one, pump] {
            engine.Execute(graph_ptr, [state, complete_one, pump] {
              state->in_flight = false;
              complete_one();
              (*pump)();
            });
          });
        };
        for (size_t i = 0; i < units.size(); ++i) {
          const SimTime launch_at = static_cast<SimTime>(
              static_cast<double>(forward + units[i].ready_offset) *
              launch_stretch) + options.launch_overhead;
          sim.Schedule(launch_at, [state, i, pump] {
            state->ready[i] = true;
            (*pump)();
          });
        }
      }
    });

    sim.Run();
    const SimTime end =
        std::max(iteration_end, iter_start + slowest_compute);
    if (recovery_started_at >= 0) {
      // Recovery latency: failure detection to the degraded barrier.
      const SimTime window = end - recovery_started_at;
      report.recovery_time += window;
      recovery_ms.Observe(ToMillis(window));
      if (spans) {
        spans->Add(0, kTraceLaneRecovery,
                   StrFormat("recovery (%zu node(s) failed)",
                             engine.failed_nodes().size()),
                   recovery_started_at, end);
      }
    }
    // Model-state step: every member that survived this iteration applies
    // the same (seed, iteration)-derived delta, so live replicas stay
    // bit-identical and a resynced joiner lands on the churn-free sum.
    // Ordinals start at kStateFloats to stay disjoint from the init draws.
    invalidate_crashed(end);
    for (const int node : current_members) {
      if (!state_valid[node] || engine.node_failed(node)) {
        continue;
      }
      for (size_t j = 0; j < kStateFloats; ++j) {
        const uint64_t ordinal =
            static_cast<uint64_t>(iteration + 1) * kStateFloats + j;
        model_state[node][j] += static_cast<float>(
            FaultUniform(state_seed, ordinal) - 0.5);
      }
    }
    // Critical-path attribution of this iteration's window, over every
    // graph that executed (recovery rebuilds included). The per-category
    // milliseconds sum to the iteration time by construction.
    {
      std::vector<const TaskGraph*> views;
      views.reserve(graphs.size());
      for (const auto& graph : graphs) {
        views.push_back(graph.get());
      }
      const IterationAttribution attrib =
          AttributeIteration(views, iter_start, end);
      StepRecord step;
      step.iteration = iteration;
      step.iteration_ms = ToMillis(end - iter_start);
      step.compute_ms = ToMillis(attrib.attribution[CpCategory::kCompute]);
      step.encode_ms = ToMillis(attrib.attribution[CpCategory::kEncode]);
      step.merge_ms = ToMillis(attrib.attribution[CpCategory::kMerge]);
      step.send_ms = ToMillis(attrib.attribution[CpCategory::kSend]);
      step.recv_ms = ToMillis(attrib.attribution[CpCategory::kRecv]);
      step.decode_ms = ToMillis(attrib.attribution[CpCategory::kDecode]);
      step.wait_ms = ToMillis(attrib.attribution[CpCategory::kWait]);
      step.path_tasks = static_cast<int>(attrib.path.steps.size());
      step.degraded = recovery_started_at >= 0;
      // Straggler skew: per-node offset of the last sync-task completion,
      // max minus median across the nodes that synchronized.
      std::vector<SimTime> last_end(static_cast<size_t>(config.num_nodes),
                                    kTaskNeverRan);
      for (const auto& graph : graphs) {
        for (TaskId id = 0; id < graph->size(); ++id) {
          const SyncTask& task = graph->task(id);
          if (task.node < 0 || task.end_time == kTaskNeverRan) {
            continue;
          }
          last_end[task.node] = std::max(last_end[task.node], task.end_time);
        }
      }
      std::vector<SimTime> offsets;
      for (const SimTime t : last_end) {
        if (t != kTaskNeverRan) {
          offsets.push_back(t - iter_start);
        }
      }
      if (offsets.size() >= 2) {
        std::sort(offsets.begin(), offsets.end());
        const size_t n = offsets.size();
        const SimTime median =
            n % 2 == 1 ? offsets[n / 2]
                       : (offsets[n / 2 - 1] + offsets[n / 2]) / 2;
        step.straggler_skew_ms = ToMillis(offsets.back() - median);
      }
      straggler_skew.Set(step.straggler_skew_ms);
      report.steps.push_back(step);
      if (measured) {
        report.cp_attribution = attrib.attribution;
        if (spans) {
          AddCriticalPathSpans(attrib.path, iter_start, /*compute_node=*/0,
                               spans.get());
        }
      }
      // Adaptive decision boundary: the engine is idle (sim.Run drained),
      // so refreshed plans and a codec swap cannot touch in-flight graphs
      // or pooled wire buffers. The next iteration's graphs are built from
      // the refreshed units[i].plan.
      if (adaptive) {
        const AdaptiveDecision decision =
            adaptive->Observe(iteration, attrib.attribution,
                              engine.auditor());
        metrics->gauge("adaptive.send_share").Set(decision.send_share);
        metrics->gauge("adaptive.observed_gbps").Set(decision.observed_gbps);
        metrics->gauge("adaptive.planned_gbps").Set(decision.planned_gbps);
        metrics->gauge("adaptive.compressed_units")
            .Set(static_cast<double>(decision.compressed_units));
        if (decision.replanned) {
          metrics->counter("adaptive.replans").Increment();
          metrics->counter("adaptive.replanned_units")
              .Increment(static_cast<uint64_t>(decision.replanned_units));
          for (size_t i = 0; i < units.size(); ++i) {
            units[i].plan = adaptive->plans()[i];
          }
          if (decision.codec_switched) {
            metrics->counter("adaptive.codec_switches").Increment();
            const AdaptiveCodecOption& codec = adaptive->active_codec();
            engine.ApplyCodec(codec.algorithm, codec.impl, codec.speed);
          }
          if (spans) {
            spans->Add(0, kTraceLaneAdaptive,
                       StrFormat("adaptive:%s", decision.algorithm.c_str()),
                       iter_start, end);
          }
        }
      }
      // Feed the windowed series and run the watchdog at the boundary. The
      // send-bandwidth signal is the auditor's per-iteration sample delta —
      // the same windowed estimate the adaptive controller plans from.
      if (watchdog) {
        hub.Series("train.iteration_ms")
            .Observe(end, ToMillis(end - iter_start));
        const CostSampleStats send_now =
            engine.auditor().Snapshot(CostPrimitive::kSend);
        const CostSampleStats send_delta = send_now.Since(send_stats_prev);
        send_stats_prev = send_now;
        if (send_delta.count > 0) {
          hub.Series("net.send_gbps")
              .Observe(end, send_delta.MeanThroughput() * 8.0 / 1e9);
        }
        metrics->gauge("sim.queue_depth")
            .Set(static_cast<double>(sim.queue_depth()));
        metrics->gauge("cp.share.send")
            .Set(attrib.attribution.Share(CpCategory::kSend));
        hub.SampleAll(end);
        watchdog->Evaluate(end);
      }
      if (flight) {
        flight->Record(0, ev_iter_end, end, static_cast<uint64_t>(iteration),
                       static_cast<uint64_t>(end - iter_start));
        if (recovery_started_at >= 0) {
          flight->Record(0, ev_recovery, end,
                         static_cast<uint64_t>(iteration),
                         static_cast<uint64_t>(end - recovery_started_at));
        }
      }
    }
    iterations_counter.Increment();
    iteration_ms.Observe(ToMillis(end - iter_start));
    sync_tail_ms.Observe(ToMillis(
        std::max<SimTime>(0, end - (iter_start + compute_time))));
    step_wire_pool_misses.Set(static_cast<double>(
        net.wire_pool()->stats().misses - wire_misses_before));
    if (measured) {
      measured_iter_time = end - iter_start;
      measured_uplink_busy = net.uplink_busy(0) - uplink_busy_before;
      measured_downlink_busy = net.downlink_busy(0) - downlink_busy_before;
      if (spans && end > iter_start) {
        // Busy-occupancy bars for node 0's two link sides: bar length is
        // the serialization time accrued this iteration, so it reads
        // directly against the iteration span above it.
        const double iter_span = static_cast<double>(end - iter_start);
        spans->Add(
            0, kTraceLaneLinkBusy,
            StrFormat("uplink-busy %.1f%%",
                      100.0 * static_cast<double>(measured_uplink_busy) /
                          iter_span),
            iter_start, iter_start + measured_uplink_busy);
        spans->Add(
            0, kTraceLaneLinkBusy,
            StrFormat("downlink-busy %.1f%%",
                      100.0 * static_cast<double>(measured_downlink_busy) /
                          iter_span),
            iter_start, iter_start + measured_downlink_busy);
      }
      measured_sync_tail =
          std::max<SimTime>(0, end - (iter_start + compute_time));
      // Synchronization span: from the first gradient's sync launch to the
      // last gradient's completion (the paper's communication-time metric
      // counts the whole synchronization window, overlapped or not).
      SimTime first_launch = forward + units[0].ready_offset;
      for (const SyncUnit& unit : units) {
        first_launch = std::min(first_launch, forward + unit.ready_offset);
      }
      const SimTime sync_end = iteration_end > 0 ? iteration_end : end;
      measured_sync_span =
          std::max<SimTime>(0, sync_end - (iter_start + first_launch));
      EngineStats delta = engine.stats();
      delta.encode_tasks -= stats_before.encode_tasks;
      delta.decode_tasks -= stats_before.decode_tasks;
      delta.merge_tasks -= stats_before.merge_tasks;
      delta.send_tasks -= stats_before.send_tasks;
      delta.encode_time -= stats_before.encode_time;
      delta.decode_time -= stats_before.decode_time;
      delta.merge_time -= stats_before.merge_time;
      delta.wire_bytes -= stats_before.wire_bytes;
      report.engine_stats = delta;
    }
    iter_start = end;
  }

  report.iteration_time = measured_iter_time;
  report.sync_tail = measured_sync_tail;
  if (adaptive) {
    report.adaptive = adaptive->Report();
  }
  report.failed_nodes = engine.failed_nodes();
  report.degraded = !report.failed_nodes.empty();
  report.surviving_nodes =
      config.num_nodes - static_cast<int>(report.failed_nodes.size());
  if (report.degraded) {
    // Only the survivors still contribute samples.
    report.total_gpus = report.surviving_nodes * config.gpus_per_node;
  }
  // Quiesce the membership view: crashes detected during the final
  // iteration become evictions so the report's view matches the epoch log.
  invalidate_crashed(sim.now());
  for (const int node : engine.failed_nodes()) {
    if (membership.is_member(node) && membership.size() > 1) {
      membership.Remove(node, MembershipChange::kCrash, sim.now());
    }
  }
  mreport.final_epoch = membership.epoch();
  mreport.final_members = membership.members();
  mreport.joins = membership.joins();
  mreport.leaves = membership.leaves();
  mreport.crashes = membership.crashes();
  mreport.rejoins = membership.rejoins();
  mreport.rejoined_contributions = rejoined_contrib_counter.value();
  mreport.event_log = membership.LogString();
  // The chaos-soak gate: every final member holds valid model state,
  // bit-identical across members, fingerprinted for cross-run comparison.
  mreport.state_consistent = !mreport.final_members.empty();
  const std::vector<float>& canon = model_state[mreport.final_members[0]];
  for (const int node : mreport.final_members) {
    if (!state_valid[node] ||
        std::memcmp(model_state[node].data(), canon.data(), kStateBytes) !=
            0) {
      mreport.state_consistent = false;
      break;
    }
  }
  uint64_t fingerprint = 14695981039346656037ULL;  // FNV-1a offset basis
  const uint8_t* canon_bytes =
      reinterpret_cast<const uint8_t*>(canon.data());
  for (size_t b = 0; b < kStateBytes; ++b) {
    fingerprint ^= canon_bytes[b];
    fingerprint *= 1099511628211ULL;
  }
  mreport.model_fingerprint = fingerprint;
  metrics->gauge("membership.state_consistent")
      .Set(mreport.state_consistent ? 1.0 : 0.0);
  metrics->gauge("membership.final_members")
      .Set(static_cast<double>(mreport.final_members.size()));
  report.membership = mreport;
  if (membership_active) {
    // Joins/leaves make crash-count arithmetic wrong; the view is the
    // authority on who still contributes samples.
    report.surviving_nodes = membership.size();
    report.total_gpus = membership.size() * config.gpus_per_node;
  }
  const double iter_seconds = ToSeconds(measured_iter_time);
  if (iter_seconds > 0) {
    report.throughput = static_cast<double>(report.total_gpus) *
                        model.batch_per_gpu / iter_seconds;
    report.scaling_efficiency =
        static_cast<double>(compute_time) /
        static_cast<double>(measured_iter_time);
    report.comm_ratio =
        std::min(1.0, static_cast<double>(measured_sync_span) /
                          static_cast<double>(measured_iter_time));
    report.network_busy_ratio =
        std::min(1.0, static_cast<double>(measured_uplink_busy) /
                          static_cast<double>(measured_iter_time));
    report.rx_busy_ratio =
        std::min(1.0, static_cast<double>(measured_downlink_busy) /
                          static_cast<double>(measured_iter_time));
  }
  if (options.record_timeline) {
    report.timeline = gpus[0]->timeline();
  }
  if (watchdog) {
    report.health = watchdog->Finalize();
  }
  finalize_observability();
  return report;
}

}  // namespace hipress
