#include "src/train/cluster_job.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <utility>

#include "src/casync/builder.h"
#include "src/casync/engine.h"
#include "src/casync/secopa.h"
#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/compress/registry.h"
#include "src/compress/speed_profile.h"
#include "src/models/model_profile.h"
#include "src/net/network.h"
#include "src/sim/simulator.h"
#include "src/simgpu/gpu.h"
#include "src/strategies/presets.h"

namespace hipress {
namespace {

// Mirrors trainer.cc's SyncUnit: one gradient (or ring fusion bucket).
struct JobUnit {
  uint64_t bytes = 0;
  SimTime ready_offset = 0;  // from backward start, incl. local aggregation
  GradientSync plan;
};

SimTime JobLocalAggregationTime(uint64_t bytes, const SyncConfig& config) {
  const int g = config.gpus_per_node;
  if (g <= 1) {
    return 0;
  }
  const double volume = 2.0 * (g - 1) / g * static_cast<double>(bytes);
  return FromMicros(20.0) +
         static_cast<SimTime>(volume / config.intra_node_bytes_per_sec *
                              static_cast<double>(kSecond));
}

// Everything one job needs while the shared simulator runs. Stable address
// (held by unique_ptr) because simulator callbacks capture `Job*`.
struct Job {
  ClusterJobSpec spec;
  std::string prefix;
  std::vector<int> nodes;
  // plan_config sizes the strategy over the job (num_nodes = job size);
  // engine_config addresses the shared cluster (num_nodes = total) so the
  // remapped physical node ids in the task graphs stay in range.
  SyncConfig plan_config;
  SyncConfig engine_config;
  SimTime forward = 0;
  SimTime compute_time = 0;
  int batch_per_gpu = 0;
  std::vector<JobUnit> units;
  std::unique_ptr<CaSyncEngine> engine;
  std::unique_ptr<AdaptiveController> adaptive;
  std::vector<std::unique_ptr<TaskGraph>> graphs;
  int iteration = 0;
  size_t remaining = 0;
  SimTime iter_start = 0;
  ClusterJobReport report;
};

uint64_t FnvMix(uint64_t hash, uint64_t value) {
  for (int b = 0; b < 8; ++b) {
    hash ^= (value >> (8 * b)) & 0xffULL;
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace

std::vector<std::vector<int>> AssignJobNodes(int num_nodes, int num_jobs,
                                             JobPlacement placement) {
  CHECK_GT(num_jobs, 0);
  CHECK_EQ(num_nodes % num_jobs, 0)
      << "nodes must divide evenly over jobs";
  const int per_job = num_nodes / num_jobs;
  std::vector<std::vector<int>> assignment(
      static_cast<size_t>(num_jobs));
  for (auto& nodes : assignment) {
    nodes.reserve(static_cast<size_t>(per_job));
  }
  if (placement == JobPlacement::kPacked) {
    for (int k = 0; k < num_jobs; ++k) {
      for (int i = 0; i < per_job; ++i) {
        assignment[static_cast<size_t>(k)].push_back(k * per_job + i);
      }
    }
  } else {
    for (int node = 0; node < num_nodes; ++node) {
      assignment[static_cast<size_t>(node % num_jobs)].push_back(node);
    }
  }
  return assignment;
}

StatusOr<ClusterRunReport> RunClusterJobs(const ClusterJobsOptions& options) {
  const int num_jobs = static_cast<int>(options.jobs.size());
  if (num_jobs < 1) {
    return InvalidArgumentError("need at least one job");
  }
  const int total_nodes = options.cluster.num_nodes;
  if (total_nodes < num_jobs || total_nodes % num_jobs != 0) {
    return InvalidArgumentError(
        StrFormat("%d nodes do not divide evenly over %d jobs", total_nodes,
                  num_jobs));
  }
  const int nodes_per_job = total_nodes / num_jobs;
  if (nodes_per_job < 2) {
    return InvalidArgumentError("each job needs at least two nodes");
  }
  const FaultConfig& faults = options.cluster.net.faults;
  if (!faults.crashes.empty() || !faults.membership.empty() ||
      !faults.standby_nodes.empty()) {
    return InvalidArgumentError(
        "multi-job runs model contention, not churn; fault injection is "
        "only supported by single-job SimulateTraining");
  }
  for (const ClusterJobSpec& spec : options.jobs) {
    if (spec.iterations < 1) {
      return InvalidArgumentError("every job needs at least one iteration");
    }
  }

  const std::vector<std::vector<int>> assignment =
      AssignJobNodes(total_nodes, num_jobs, options.placement);

  // -------------------------------------------------------------------
  // Shared fabric: one simulator, one network, one metrics registry.
  // -------------------------------------------------------------------
  auto metrics = std::make_shared<MetricsRegistry>();
  std::shared_ptr<SpanCollector> spans;
  if (options.record_timeline) {
    spans = std::make_shared<SpanCollector>();
  }
  Simulator sim;
  Network net(&sim, total_nodes, options.cluster.net, metrics.get(),
              spans.get());
  std::vector<std::unique_ptr<GpuDevice>> gpu_storage;
  std::vector<GpuDevice*> gpus;
  gpu_storage.reserve(static_cast<size_t>(total_nodes));
  for (int node = 0; node < total_nodes; ++node) {
    gpu_storage.push_back(
        std::make_unique<GpuDevice>(&sim, node, 2, metrics.get()));
    if (options.record_timeline) {
      gpu_storage.back()->set_record_timeline(true);
    }
    gpus.push_back(gpu_storage.back().get());
  }

  // -------------------------------------------------------------------
  // Per-job setup: configs, plans, units, engine, adaptive ladder. This
  // mirrors SimulateTraining's planning path exactly (same codec rates,
  // same SeCoPa scan, same fusion rules) so a solo job here reproduces the
  // single-job trainer's schedule.
  // -------------------------------------------------------------------
  std::vector<std::unique_ptr<Job>> jobs;
  jobs.reserve(static_cast<size_t>(num_jobs));
  for (int k = 0; k < num_jobs; ++k) {
    const ClusterJobSpec& spec = options.jobs[static_cast<size_t>(k)];
    auto job = std::make_unique<Job>();
    job->spec = spec;
    job->prefix =
        spec.name.empty() ? StrFormat("job%d", k) : spec.name;
    job->nodes = assignment[static_cast<size_t>(k)];

    ClusterSpec job_cluster = options.cluster;
    job_cluster.num_nodes = nodes_per_job;
    ASSIGN_OR_RETURN(job->plan_config,
                     MakeSystemConfig(spec.system, job_cluster,
                                      spec.algorithm, spec.codec_params));
    job->engine_config = job->plan_config;
    job->engine_config.num_nodes = total_nodes;
    if (spec.adaptive.enabled &&
        (!job->plan_config.compression || !job->plan_config.secopa)) {
      return InvalidArgumentError(StrFormat(
          "%s: adaptive compression re-plans the SeCoPa cutoffs; enable "
          "compression with secopa",
          job->prefix.c_str()));
    }

    ASSIGN_OR_RETURN(const ModelProfile model, GetModelProfile(spec.model));
    if (model.gradient_bytes.empty()) {
      return InvalidArgumentError(
          StrFormat("%s: model has no gradients", job->prefix.c_str()));
    }
    const SyncConfig& config = job->plan_config;
    const double compute_scale = ComputeScale(config.platform);
    job->forward = static_cast<SimTime>(
        static_cast<double>(model.forward_time_v100) / compute_scale);
    job->compute_time =
        job->forward + static_cast<SimTime>(static_cast<double>(
                                                model.backward_time_v100) /
                                            compute_scale);
    job->batch_per_gpu = model.batch_per_gpu;

    double rate = 1.0;
    if (config.compression) {
      const std::string codec_name =
          config.codec_impl == CodecImpl::kCompLL
              ? config.algorithm
              : (CompressorRegistry::Instance().Contains("oss-" +
                                                         config.algorithm)
                     ? "oss-" + config.algorithm
                     : config.algorithm);
      ASSIGN_OR_RETURN(auto codec,
                       CreateCompressor(codec_name, config.codec_params));
      rate = codec->CompressionRate(1 << 20);
    }
    SeCoPaPlanner planner(config, rate);
    auto plan_gradient = [&](uint32_t id, uint64_t bytes) {
      GradientSync sync;
      sync.id = id;
      sync.bytes = bytes;
      sync.rate = rate;
      if (!config.compression) {
        sync.compress = false;
        sync.partitions =
            config.strategy == StrategyKind::kRing
                ? std::min<int>(config.num_nodes,
                                std::max<int>(
                                    1, static_cast<int>(bytes /
                                                        (256 * 1024))))
                : std::max<int>(1, static_cast<int>(
                                       bytes / config.ps_partition_bytes));
        sync.partitions = std::max(1, sync.partitions);
        return sync;
      }
      if (config.secopa) {
        const SyncPlan plan = planner.Plan(bytes);
        sync.compress = plan.compress;
        sync.partitions = plan.partitions;
        return sync;
      }
      sync.compress = true;
      sync.partitions =
          config.strategy == StrategyKind::kRing
              ? std::min({config.num_nodes,
                          std::max(1, config.fixed_partitions),
                          std::max<int>(1, static_cast<int>(bytes /
                                                            (256 * 1024)))})
              : std::max<int>(1, static_cast<int>(
                                     bytes / config.ps_partition_bytes));
      return sync;
    };

    if (config.ring_fusion_bytes > 0 &&
        config.strategy == StrategyKind::kRing) {
      uint64_t bucket_bytes = 0;
      SimTime bucket_ready = 0;
      uint32_t bucket_id = 0;
      auto flush = [&]() {
        if (bucket_bytes == 0) {
          return;
        }
        JobUnit unit;
        unit.bytes = bucket_bytes;
        unit.ready_offset =
            bucket_ready + JobLocalAggregationTime(bucket_bytes, config);
        unit.plan = plan_gradient(bucket_id++, bucket_bytes);
        job->units.push_back(unit);
        bucket_bytes = 0;
        bucket_ready = 0;
      };
      for (size_t i = 0; i < model.gradient_bytes.size(); ++i) {
        bucket_bytes += model.gradient_bytes[i];
        bucket_ready = std::max(
            bucket_ready, model.GradientReadyOffset(i, compute_scale));
        if (bucket_bytes >= config.ring_fusion_bytes) {
          flush();
        }
      }
      flush();
    } else {
      for (size_t i = 0; i < model.gradient_bytes.size(); ++i) {
        JobUnit unit;
        unit.bytes = model.gradient_bytes[i];
        unit.ready_offset =
            model.GradientReadyOffset(i, compute_scale) +
            JobLocalAggregationTime(unit.bytes, config);
        unit.plan = plan_gradient(static_cast<uint32_t>(i), unit.bytes);
        job->units.push_back(unit);
      }
    }

    if (spec.adaptive.enabled) {
      std::vector<AdaptiveCodecOption> ladder;
      AdaptiveCodecOption configured;
      configured.algorithm = config.algorithm;
      configured.impl = config.codec_impl;
      configured.rate = rate;
      configured.speed = planner.codec_speed();
      ladder.push_back(configured);
      for (const std::string& name : spec.adaptive.candidate_algorithms) {
        if (name == config.algorithm) {
          continue;
        }
        ASSIGN_OR_RETURN(auto codec, CreateCompressor(name, {}));
        AdaptiveCodecOption option;
        option.algorithm = name;
        option.impl = config.codec_impl;
        option.rate = codec->CompressionRate(1 << 20);
        option.speed =
            GetCodecSpeed(name, config.codec_impl, config.platform);
        ladder.push_back(option);
      }
      std::vector<uint64_t> unit_bytes;
      unit_bytes.reserve(job->units.size());
      for (const JobUnit& unit : job->units) {
        unit_bytes.push_back(unit.bytes);
      }
      job->adaptive = std::make_unique<AdaptiveController>(
          config, spec.adaptive, std::move(unit_bytes), std::move(ladder));
      for (size_t i = 0; i < job->units.size(); ++i) {
        job->units[i].plan = job->adaptive->plans()[i];
      }
    }

    // The engine keeps a private registry (metrics = nullptr): "engine.*"
    // counters would otherwise merge across jobs on the shared registry
    // and become unattributable.
    job->engine = std::make_unique<CaSyncEngine>(
        &sim, &net, gpus, job->engine_config, nullptr, spans.get());
    job->report.name = job->prefix;
    job->report.model = spec.model;
    job->report.system = spec.system;
    job->report.nodes = job->nodes;
    job->report.compute_time = job->compute_time;
    jobs.push_back(std::move(job));
  }

  // -------------------------------------------------------------------
  // Observability (docs/OBSERVABILITY.md): one cluster-wide black box (a
  // ring per node, all jobs' traffic interleaved) plus a watchdog over the
  // shared fabric — scheduler queue depth, wire-pool misses — and a
  // per-job iteration-stall rule.
  // -------------------------------------------------------------------
  std::shared_ptr<FlightRecorder> flight;
  uint16_t ev_job_iter = 0;
  if (options.observability.flight_recorder) {
    FlightRecorder::Options fr_options;
    fr_options.num_nodes = total_nodes;
    fr_options.events_per_node = options.observability.flight_events_per_node;
    fr_options.dump_path = options.observability.flight_dump_path;
    flight = std::make_shared<FlightRecorder>(fr_options);
    ev_job_iter = flight->Intern("job.iter.end");
    net.set_flight_recorder(flight.get());
    FlightRecorder::InstallGlobal(flight.get());
  }
  TimeSeriesHub hub;
  std::unique_ptr<HealthMonitor> watchdog;
  if (options.observability.watchdog) {
    hub.AttachCounter(metrics.get(), "net.pool_misses");
    hub.AttachGauge(metrics.get(), "sim.queue_depth");
    watchdog =
        std::make_unique<HealthMonitor>(&hub, metrics.get(), flight.get());
    HealthRule queue_blowup;
    queue_blowup.name = "queue_blowup";
    queue_blowup.series = "sim.queue_depth";
    queue_blowup.kind = HealthRuleKind::kAboveMedianFactor;
    queue_blowup.threshold = 4.0;
    watchdog->AddRule(queue_blowup);
    HealthRule pool_misses;
    pool_misses.name = "pool_miss_growth";
    pool_misses.series = "net.pool_misses";
    pool_misses.kind = HealthRuleKind::kAboveValue;
    pool_misses.threshold = 0.0;
    watchdog->AddRule(pool_misses);
    for (const auto& job : jobs) {
      HealthRule stall;
      stall.name = job->prefix + ".stall";
      stall.series = job->prefix + ".iteration_ms";
      stall.kind = HealthRuleKind::kAboveMedianFactor;
      stall.threshold = 3.0;
      watchdog->AddRule(stall);
    }
    watchdog->set_on_trip([&flight](const HealthRule&) {
      if (flight) {
        flight->TriggerDump("watchdog-trip");
      }
    });
  }

  // -------------------------------------------------------------------
  // Event-driven BSP: each job chains its own iterations through simulator
  // events; there is no global drain between iterations, so jobs overlap
  // freely and contend on the shared links.
  // -------------------------------------------------------------------
  int jobs_warm = 0;
  int jobs_done = 0;
  uint64_t steady_miss_baseline = 0;
  bool steady_baseline_set = false;

  std::function<void(Job*)> start_iteration;
  std::function<void(Job*)> finish_iteration;

  start_iteration = [&](Job* job) {
    job->iter_start = sim.now();
    job->remaining = job->units.size();
    job->graphs.clear();
    for (const int node : job->nodes) {
      gpus[node]->SubmitCompute(job->compute_time, [] {});
    }
    for (const JobUnit& unit : job->units) {
      auto graph = std::make_unique<TaskGraph>();
      AppendSyncTasksOver(job->plan_config, unit.plan, job->nodes,
                          graph.get());
      TaskGraph* graph_ptr = graph.get();
      job->graphs.push_back(std::move(graph));
      const SimTime launch_offset =
          job->forward + unit.ready_offset + options.launch_overhead;
      sim.Schedule(launch_offset, [&, job, graph_ptr] {
        job->engine->Execute(graph_ptr, [&, job] {
          if (--job->remaining > 0) {
            return;
          }
          // Barrier: the iteration ends when the last sync lands AND every
          // node's compute has finished (compute can outlast small syncs).
          const SimTime end =
              std::max(sim.now(), job->iter_start + job->compute_time);
          sim.ScheduleAt(end, [&, job] { finish_iteration(job); });
        });
      });
    }
  };

  finish_iteration = [&](Job* job) {
    const SimTime end = sim.now();
    job->report.iteration_end.push_back(end);
    metrics
        ->histogram(job->prefix + ".iteration_ms",
                    HistogramBuckets::Exponential(1.0, 2.0, 16))
        .Observe(ToMillis(end - job->iter_start));
    if (flight) {
      flight->Record(job->nodes.front(), ev_job_iter, end,
                     static_cast<uint64_t>(job->iteration),
                     static_cast<uint64_t>(end - job->iter_start));
    }
    if (watchdog) {
      // Queue depth is sampled mid-run here (other jobs still in flight),
      // so the blowup rule watches genuinely live backlog.
      hub.Series(job->prefix + ".iteration_ms")
          .Observe(end, ToMillis(end - job->iter_start));
      metrics->gauge("sim.queue_depth")
          .Set(static_cast<double>(sim.queue_depth()));
      hub.SampleAll(end);
      watchdog->Evaluate(end);
    }

    std::vector<const TaskGraph*> views;
    views.reserve(job->graphs.size());
    for (const auto& graph : job->graphs) {
      views.push_back(graph.get());
    }
    const IterationAttribution attrib =
        AttributeIteration(views, job->iter_start, end);

    const bool last = job->iteration + 1 == job->spec.iterations;
    if (last) {
      job->report.iteration_time = end - job->iter_start;
      job->report.cp_attribution = attrib.attribution;
      job->report.send_share = attrib.attribution.Share(CpCategory::kSend);
    }

    // Adaptive boundary: this job's graphs have all completed, so its
    // engine is idle even while other jobs' traffic is still in flight —
    // plan swaps cannot touch in-flight state.
    if (job->adaptive) {
      const AdaptiveDecision decision = job->adaptive->Observe(
          job->iteration, attrib.attribution, job->engine->auditor());
      if (decision.replanned) {
        for (size_t i = 0; i < job->units.size(); ++i) {
          job->units[i].plan = job->adaptive->plans()[i];
        }
        if (decision.codec_switched) {
          const AdaptiveCodecOption& codec = job->adaptive->active_codec();
          job->engine->ApplyCodec(codec.algorithm, codec.impl, codec.speed);
        }
      }
    }
    job->graphs.clear();

    if (job->iteration == 0 && ++jobs_warm == num_jobs) {
      // Every pool (scheduler slabs, wire buffers) has now seen a full
      // cluster-wide iteration; later misses indicate unbounded growth.
      steady_miss_baseline = sim.sched_pool_misses();
      steady_baseline_set = true;
    }
    ++job->iteration;
    if (last) {
      if (job->adaptive) {
        job->report.adaptive = job->adaptive->Report();
      }
      ++jobs_done;
      return;
    }
    start_iteration(job);
  };

  for (const auto& job : jobs) {
    start_iteration(job.get());
  }
  sim.Run();

  if (jobs_done != num_jobs) {
    return InternalError(
        StrFormat("simulation drained with %d of %d jobs incomplete",
                  num_jobs - jobs_done, num_jobs));
  }

  // -------------------------------------------------------------------
  // Reports, fingerprint, shared-registry gauges.
  // -------------------------------------------------------------------
  ClusterRunReport run;
  run.sim_time = sim.now();
  run.wall_seconds = sim.run_wall_seconds();
  run.events_processed = sim.events_processed();
  run.events_per_wall_second = sim.events_per_wall_second();
  run.queue_peak_depth = sim.queue_peak_depth();
  run.sched_pool_misses = sim.sched_pool_misses();
  run.steady_sched_pool_misses =
      steady_baseline_set ? sim.sched_pool_misses() - steady_miss_baseline
                          : 0;
  run.metrics = metrics;
  run.spans = spans;
  if (watchdog) {
    run.health = watchdog->Finalize();
  }
  if (flight) {
    flight->PublishMetrics(metrics.get());
    if (!options.observability.flight_dump_path.empty()) {
      flight->TriggerDump("end-of-run");
    }
    run.flight = flight;
  }

  uint64_t fingerprint = 14695981039346656037ULL;
  for (size_t k = 0; k < jobs.size(); ++k) {
    Job& job = *jobs[k];
    fingerprint = FnvMix(fingerprint, static_cast<uint64_t>(k));
    for (size_t i = 0; i < job.report.iteration_end.size(); ++i) {
      fingerprint = FnvMix(fingerprint, static_cast<uint64_t>(i));
      fingerprint = FnvMix(
          fingerprint, static_cast<uint64_t>(job.report.iteration_end[i]));
    }

    const double iter_seconds = ToSeconds(job.report.iteration_time);
    if (iter_seconds > 0) {
      job.report.throughput =
          static_cast<double>(job.nodes.size()) *
          options.cluster.gpus_per_node * job.batch_per_gpu / iter_seconds;
    }
    metrics->gauge(job.prefix + ".iteration_ms_last")
        .Set(ToMillis(job.report.iteration_time));
    metrics->gauge(job.prefix + ".throughput").Set(job.report.throughput);
    metrics->gauge(job.prefix + ".cp.share.send")
        .Set(job.report.send_share);
    metrics->gauge(job.prefix + ".nodes")
        .Set(static_cast<double>(job.nodes.size()));
    if (job.report.adaptive.enabled) {
      metrics->gauge(job.prefix + ".replans")
          .Set(static_cast<double>(job.report.adaptive.replans));
      metrics->gauge(job.prefix + ".codec_switches")
          .Set(static_cast<double>(job.report.adaptive.codec_switches));
    }
    run.jobs.push_back(std::move(job.report));
  }
  run.replay_fingerprint = fingerprint;

  metrics->gauge("sim.events_processed")
      .Set(static_cast<double>(run.events_processed));
  metrics->gauge("sim.events_per_wall_second")
      .Set(run.events_per_wall_second);
  metrics->gauge("sim.queue_peak_depth")
      .Set(static_cast<double>(run.queue_peak_depth));
  metrics->gauge("sim.sched_pool_misses")
      .Set(static_cast<double>(run.sched_pool_misses));
  metrics->gauge("sim.steady_sched_pool_misses")
      .Set(static_cast<double>(run.steady_sched_pool_misses));
  return run;
}

}  // namespace hipress
