// Chrome trace export: dump a recorded GPU timeline as a
// chrome://tracing / Perfetto JSON file, so a simulated run can be
// inspected visually (compute blocks vs compression kernels — the picture
// behind Figure 9).
#ifndef HIPRESS_SRC_TRAIN_TRACE_H_
#define HIPRESS_SRC_TRAIN_TRACE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/simgpu/gpu.h"

namespace hipress {

// Serializes intervals as complete events ("ph":"X"), one thread row per
// task kind; timestamps in microseconds relative to `origin`.
std::string TimelineToChromeTrace(const std::vector<GpuInterval>& timeline,
                                  SimTime origin = 0);

// Writes the JSON to `path`.
Status WriteChromeTrace(const std::string& path,
                        const std::vector<GpuInterval>& timeline,
                        SimTime origin = 0);

}  // namespace hipress

#endif  // HIPRESS_SRC_TRAIN_TRACE_H_
