// Chrome trace / Perfetto export.
//
// Two levels:
//   * TimelineToChromeTrace — one GPU timeline, one thread row per task
//     kind (the original single-device view behind Figure 9).
//   * UnifiedTraceToJson — the merged cluster trace: one Perfetto process
//     track per node carrying its GPU kernel rows plus the
//     network-transfer and coordinator-round spans recorded by a
//     SpanCollector. This is the visual of the compute/compression/
//     communication overlap the paper's pipelining argument rests on.
#ifndef HIPRESS_SRC_TRAIN_TRACE_H_
#define HIPRESS_SRC_TRAIN_TRACE_H_

#include <string>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/simgpu/gpu.h"
#include "src/train/trainer.h"

namespace hipress {

// Serializes intervals as complete events ("ph":"X"), one thread row per
// task kind; timestamps in microseconds relative to `origin`.
std::string TimelineToChromeTrace(const std::vector<GpuInterval>& timeline,
                                  SimTime origin = 0);

// Writes the JSON to `path`.
Status WriteChromeTrace(const std::string& path,
                        const std::vector<GpuInterval>& timeline,
                        SimTime origin = 0);

// Input for the merged cluster trace. `node_timelines[i]` is node i's GPU
// timeline (may be empty); `spans` adds the network/coordinator rows (may
// be null). Events ending at or before `origin` are dropped.
struct UnifiedTraceInput {
  std::vector<std::vector<GpuInterval>> node_timelines;
  const SpanCollector* spans = nullptr;
  SimTime origin = 0;
};

// One JSON document: pid = node (named "node<i>"), tid = row within the
// node (GPU task kinds on rows 0..4, net:uplink/net:downlink/coordinator
// above them), with process/thread-name metadata so Perfetto labels the
// tracks.
std::string UnifiedTraceToJson(const UnifiedTraceInput& input);

Status WriteUnifiedTrace(const std::string& path,
                         const UnifiedTraceInput& input);

// Convenience: exports a TrainReport produced with record_timeline set
// (every node's GPU rows + the run's network/coordinator spans).
Status WriteTrainReportTrace(const std::string& path,
                             const TrainReport& report);

}  // namespace hipress

#endif  // HIPRESS_SRC_TRAIN_TRACE_H_
