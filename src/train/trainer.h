// Data-parallel training-loop simulator.
//
// Drives one model profile over the simulated cluster under a SyncConfig:
// every node runs forward+backward on its GPU; gradients become available
// back-to-front during backward (after intra-node local aggregation across
// the node's GPUs, Section 5); each gradient's synchronization task graph
// launches the moment it is ready, so communication and compression overlap
// the remaining backward computation. An iteration ends when every
// gradient has been synchronized on every node (BSP barrier).
//
// Reports the metrics the evaluation section uses: throughput
// (samples/sec), scaling efficiency, communication ratio, and the
// computation/synchronization latency breakdown of Figure 11.
#ifndef HIPRESS_SRC_TRAIN_TRAINER_H_
#define HIPRESS_SRC_TRAIN_TRAINER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/casync/adaptive.h"
#include "src/casync/config.h"
#include "src/casync/critical_path.h"
#include "src/casync/engine.h"
#include "src/casync/secopa.h"
#include "src/common/flight_recorder.h"
#include "src/common/metrics.h"
#include "src/common/profiler.h"
#include "src/common/watchdog.h"
#include "src/common/status.h"
#include "src/models/model_profile.h"
#include "src/simgpu/gpu.h"

namespace hipress {

struct TrainOptions {
  int iterations = 2;           // the last iteration is the measured one
  // Record every node's GPU intervals plus network/coordinator trace spans,
  // enabling the merged Perfetto export (WriteTrainReportTrace); the
  // node-0 timeline also feeds Figure 9.
  bool record_timeline = false;
  // Per-gradient sync launch overhead (framework negotiation/dispatch).
  SimTime launch_overhead = FromMicros(50.0);
  // Straggler injection: node `straggler_node` computes
  // `straggler_factor` times slower (its gradients — which every
  // aggregation needs — arrive late, stretching BSP iterations).
  int straggler_node = -1;
  double straggler_factor = 1.0;
  // Bounded staleness (SSP, the paper's Section 7 extension): iteration k
  // may start computing once iteration k-1-staleness has fully
  // synchronized, so up to `staleness`+1 iterations pipeline. 0 = BSP.
  // With staleness > 0 the report carries average iteration time and
  // throughput; the per-iteration breakdown fields are zero.
  int staleness = 0;
  // Runtime-adaptive compression (docs/ADAPTIVE.md): when enabled, an
  // AdaptiveController observes every iteration's critical-path
  // attribution and the engine's measured send latencies, and re-plans
  // codec/ratio/cutoffs at iteration boundaries. Requires compression with
  // SeCoPa on the BSP path (staleness == 0, concurrent collectives).
  AdaptiveOptions adaptive;
  // Always-on flight recorder + health watchdog (docs/OBSERVABILITY.md).
  ObservabilityOptions observability;
};

// Elastic-membership summary (docs/FAULT_TOLERANCE.md): the epoch-numbered
// transition history, donor re-sync accounting, and the post-quiesce model
// state check the chaos-soak gate relies on. `enabled` is set when the
// fault schedule carries membership events or standby nodes.
struct MembershipReport {
  bool enabled = false;
  uint64_t final_epoch = 0;
  std::vector<int> final_members;
  uint64_t joins = 0;
  uint64_t leaves = 0;
  uint64_t crashes = 0;
  uint64_t rejoins = 0;
  // Donor state transfers (joins + rejoins) over the pooled wire path.
  uint64_t resyncs = 0;
  uint64_t resync_bytes = 0;
  // Total simulated time spent in drain + re-sync windows.
  SimTime resync_time = 0;
  // Node-iterations computed by nodes that crashed and later rejoined —
  // nonzero proves a rejoined node contributed to training again.
  uint64_t rejoined_contributions = 0;
  // MembershipManager::LogString(): one line per transition, reproduced
  // byte-for-byte by a replay with the same fault schedule.
  std::string event_log;
  // FNV-1a over the lowest-id final member's model state. Bit-identical to
  // the churn-free run with the same seed and iteration count once every
  // transition has quiesced.
  uint64_t model_fingerprint = 0;
  // All final members hold bit-identical, valid model state.
  bool state_consistent = false;
};

struct TrainReport {
  SimTime iteration_time = 0;
  SimTime compute_time = 0;  // single-GPU forward+backward
  // Time after backward completes until the last gradient is synchronized
  // (the non-hidden communication the paper's pipelining fights).
  SimTime sync_tail = 0;
  double throughput = 0.0;          // cluster samples (or tokens)/sec
  double scaling_efficiency = 0.0;  // vs. linear scaling of one GPU
  // Fraction of the iteration covered by the synchronization window (first
  // sync launch to last completion) — the paper's communication-time ratio.
  double comm_ratio = 0.0;
  // Node-0 uplink busy share (pure wire-serialization view).
  double network_busy_ratio = 0.0;
  // Node-0 downlink (receive-side) busy share.
  double rx_busy_ratio = 0.0;
  int total_gpus = 0;
  // --- fault tolerance (docs/FAULT_TOLERANCE.md) -------------------------
  // True when at least one node was declared failed during the run; the
  // remaining iterations (and the throughput above) ran degraded over the
  // survivors.
  bool degraded = false;
  std::vector<int> failed_nodes;  // detection order
  int surviving_nodes = 0;
  // Sync-unit task graphs rebuilt over the survivors after a cancellation.
  uint64_t recoveries = 0;
  // Total simulated time spent inside recovery windows (first failure
  // detection in an iteration to that iteration's completion).
  SimTime recovery_time = 0;
  // Engine-side accounting for the measured iteration: primitive counts,
  // modelled kernel time, and bytes on the wire (sums over all nodes).
  EngineStats engine_stats;
  // Critical-path wall-time attribution of the measured iteration
  // (src/casync/critical_path.h); sums to iteration_time on the BSP path,
  // all-zero under SSP (pipelined iterations have no single bounding
  // chain). Also exported as "cp.<category>_ms" / "cp.share.<category>"
  // gauges in `metrics`.
  CpAttribution cp_attribution;
  // One StepRecord per BSP iteration (including warm-up), ready for
  // WriteStepReport (`train_cluster --step-report`). Empty under SSP.
  std::vector<StepRecord> steps;
  // Elastic-membership lifecycle summary; also exported as the
  // "membership.*" metrics family.
  MembershipReport membership;
  // Adaptive-controller summary (enabled == false when the run was fixed):
  // one decision per iteration, replan/switch counts, and the
  // deterministic decision log replays must reproduce byte-for-byte.
  AdaptiveReport adaptive;
  // Interpolated percentiles of the per-iteration "train.iteration_ms"
  // histogram over the whole run.
  double iteration_p50_ms = 0.0;
  double iteration_p95_ms = 0.0;
  double iteration_p99_ms = 0.0;
  std::vector<GpuInterval> timeline;  // node-0 device (if recorded)
  SimTime timeline_origin = 0;        // measured iteration's start time
  // Full run observability. `metrics` is always populated: the engine,
  // network, coordinator and GPU counters plus the trainer's per-iteration
  // histograms ("train.iteration_ms", ...), whole-run totals (not deltas).
  // `spans` and `node_timelines` are populated when record_timeline is set
  // and feed the merged Perfetto trace (one track per node).
  std::shared_ptr<MetricsRegistry> metrics;
  std::shared_ptr<SpanCollector> spans;
  std::vector<std::vector<GpuInterval>> node_timelines;
  // Watchdog verdict over the run (health.* metrics mirror it); enabled is
  // false when options.observability.watchdog was off or the run was SSP.
  HealthReport health;
  // The run's black box, still holding every ring (BSP path, recorder on).
  // Callers can Dump() it after the fact; train_cluster --flight-record
  // wires the dump path through ObservabilityOptions instead.
  std::shared_ptr<FlightRecorder> flight;
};

// Runs the simulation; deterministic for fixed inputs.
StatusOr<TrainReport> SimulateTraining(const ModelProfile& model,
                                       const SyncConfig& config,
                                       const TrainOptions& options = {});

}  // namespace hipress

#endif  // HIPRESS_SRC_TRAIN_TRAINER_H_
