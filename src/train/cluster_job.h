// Multi-job cluster simulation (docs/TOPOLOGY.md).
//
// RunClusterJobs instantiates K independent training jobs — each with its
// own model, sync system, codec, task-graph engine and (optionally) adaptive
// controller — over disjoint node subsets of ONE simulated cluster: a single
// Simulator drives a single Network, so every job's traffic contends for the
// same links. Under a flat topology jobs only collide at their own endpoint
// NICs; under an oversubscribed fat tree with striped placement, jobs share
// ToR uplinks and the cross-job interference the multi-tenant-cluster
// literature analyzes (PAPERS.md, "On the Utility of Gradient Compression")
// becomes measurable: per-job iteration times stretch versus a solo run,
// critical-path send shares rise, and each job's AdaptiveController reacts
// to bandwidth it actually observes.
//
// Each job is a BSP loop chained through simulator events (no per-iteration
// drain — jobs progress concurrently at their own pace): compute on every
// job node, per-unit sync graphs built over the job's global node ids via
// AppendSyncTasksOver, a barrier when the last unit lands, then the next
// iteration. Per-job results surface both in ClusterJobReport and as
// "job<k>.*" gauges on the shared registry.
#ifndef HIPRESS_SRC_TRAIN_CLUSTER_JOB_H_
#define HIPRESS_SRC_TRAIN_CLUSTER_JOB_H_

#include <memory>
#include <string>
#include <vector>

#include "src/casync/adaptive.h"
#include "src/casync/critical_path.h"
#include "src/common/flight_recorder.h"
#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/common/watchdog.h"
#include "src/compress/compressor.h"
#include "src/strategies/presets.h"

namespace hipress {

struct ClusterJobSpec {
  // Metrics prefix and display name; defaults to "job<k>" when empty.
  std::string name;
  std::string model = "resnet50";
  std::string system = "hipress-ps";
  std::string algorithm = "onebit";
  CompressorParams codec_params;
  int iterations = 3;
  // Per-job runtime-adaptive compression (docs/ADAPTIVE.md); each job runs
  // its own controller against its own engine's measurements.
  AdaptiveOptions adaptive;
};

enum class JobPlacement {
  // Contiguous node blocks: job k gets nodes [k*S, (k+1)*S). Under a fat
  // tree, jobs mostly own whole racks and meet only on the spine.
  kPacked,
  // Round-robin striping: job k gets nodes {k, k+K, k+2K, ...}. Every rack
  // hosts every job, so oversubscribed ToR uplinks are genuinely shared —
  // the adversarial multi-tenancy layout (the default).
  kStriped,
};

struct ClusterJobsOptions {
  // cluster.num_nodes is the whole cluster; nodes divide evenly over jobs.
  ClusterSpec cluster;
  std::vector<ClusterJobSpec> jobs;
  JobPlacement placement = JobPlacement::kStriped;
  SimTime launch_overhead = FromMicros(50.0);
  bool record_timeline = false;
  // Flight recorder + watchdog (docs/OBSERVABILITY.md). The recorder spans
  // the whole cluster (one ring per node); watchdog rules cover the shared
  // scheduler/network plus a per-job iteration-stall rule.
  ObservabilityOptions observability;
};

struct ClusterJobReport {
  std::string name;
  std::string model;
  std::string system;
  std::vector<int> nodes;
  SimTime compute_time = 0;
  SimTime iteration_time = 0;  // final (steady-state) iteration
  double throughput = 0.0;     // job samples/sec over the final iteration
  // Critical-path attribution of the final iteration and its send share —
  // the cross-job contention signal.
  CpAttribution cp_attribution;
  double send_share = 0.0;
  AdaptiveReport adaptive;
  // Absolute completion time of every BSP iteration; the replay
  // fingerprint hashes these, so two runs from the same seed must match
  // bit-for-bit.
  std::vector<SimTime> iteration_end;
};

struct ClusterRunReport {
  std::vector<ClusterJobReport> jobs;
  SimTime sim_time = 0;
  double wall_seconds = 0.0;
  // Scheduler health (also published as "sim.*" gauges on `metrics`).
  uint64_t events_processed = 0;
  double events_per_wall_second = 0.0;
  uint64_t queue_peak_depth = 0;
  uint64_t sched_pool_misses = 0;
  // Event-record pool misses after every job finished its first iteration;
  // zero in steady state (the invariant bench_sim_scale gates).
  uint64_t steady_sched_pool_misses = 0;
  // FNV-1a over every job's per-iteration completion times. Machine
  // independent: simulated nanoseconds only.
  uint64_t replay_fingerprint = 0;
  std::shared_ptr<MetricsRegistry> metrics;
  std::shared_ptr<SpanCollector> spans;
  // Watchdog verdict over the whole run (health.* gauges mirror it).
  HealthReport health;
  // Cluster-wide black box (one ring per node, all jobs' traffic).
  std::shared_ptr<FlightRecorder> flight;
};

// Node subsets for `num_jobs` jobs over `num_nodes` nodes (must divide
// evenly; every job gets num_nodes / num_jobs nodes).
std::vector<std::vector<int>> AssignJobNodes(int num_nodes, int num_jobs,
                                             JobPlacement placement);

// Runs every job to completion on one shared cluster; deterministic for
// fixed options. Fault injection is not supported here — multi-job runs
// model contention, not churn (single-job SimulateTraining covers faults).
StatusOr<ClusterRunReport> RunClusterJobs(const ClusterJobsOptions& options);

}  // namespace hipress

#endif  // HIPRESS_SRC_TRAIN_CLUSTER_JOB_H_
