#include "src/train/trace.h"

#include <fstream>
#include <sstream>

#include "src/common/string_util.h"

namespace hipress {

std::string TimelineToChromeTrace(const std::vector<GpuInterval>& timeline,
                                  SimTime origin) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const GpuInterval& interval : timeline) {
    if (interval.end <= origin) {
      continue;
    }
    if (!first) {
      out << ",";
    }
    first = false;
    const double start_us =
        static_cast<double>(interval.start - origin) / kMicrosecond;
    const double duration_us =
        static_cast<double>(interval.end - interval.start) / kMicrosecond;
    // tid groups rows by task kind; compute on row 0.
    const int tid = static_cast<int>(interval.kind);
    out << StrFormat(
        "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
        "\"pid\":0,\"tid\":%d}",
        GpuTaskKindName(interval.kind), start_us, duration_us, tid);
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

Status WriteChromeTrace(const std::string& path,
                        const std::vector<GpuInterval>& timeline,
                        SimTime origin) {
  std::ofstream file(path);
  if (!file.good()) {
    return InvalidArgumentError("cannot open trace file: " + path);
  }
  file << TimelineToChromeTrace(timeline, origin);
  if (!file.good()) {
    return InternalError("failed writing trace file: " + path);
  }
  return OkStatus();
}

}  // namespace hipress
