#include "src/train/trace.h"

#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "src/common/string_util.h"

namespace hipress {

std::string TimelineToChromeTrace(const std::vector<GpuInterval>& timeline,
                                  SimTime origin) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const GpuInterval& interval : timeline) {
    if (interval.end <= origin) {
      continue;
    }
    if (!first) {
      out << ",";
    }
    first = false;
    const double start_us =
        static_cast<double>(interval.start - origin) / kMicrosecond;
    const double duration_us =
        static_cast<double>(interval.end - interval.start) / kMicrosecond;
    // tid groups rows by task kind; compute on row 0.
    const int tid = static_cast<int>(interval.kind);
    out << StrFormat(
        "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
        "\"pid\":0,\"tid\":%d}",
        GpuTaskKindName(interval.kind), start_us, duration_us, tid);
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

Status WriteChromeTrace(const std::string& path,
                        const std::vector<GpuInterval>& timeline,
                        SimTime origin) {
  std::ofstream file(path);
  if (!file.good()) {
    return InvalidArgumentError("cannot open trace file: " + path);
  }
  file << TimelineToChromeTrace(timeline, origin);
  if (!file.good()) {
    return InternalError("failed writing trace file: " + path);
  }
  return OkStatus();
}

namespace {

void AppendEvent(std::ostringstream& out, bool* first, const char* name,
                 SimTime start, SimTime end, int pid, int tid,
                 SimTime origin) {
  if (end <= origin) {
    return;
  }
  if (!*first) {
    out << ",";
  }
  *first = false;
  const double start_us = static_cast<double>(start - origin) / kMicrosecond;
  const double duration_us = static_cast<double>(end - start) / kMicrosecond;
  out << StrFormat(
      "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
      "\"pid\":%d,\"tid\":%d}",
      name, start_us, duration_us, pid, tid);
}

void AppendMetadata(std::ostringstream& out, bool* first, const char* kind,
                    const std::string& label, int pid, int tid) {
  if (!*first) {
    out << ",";
  }
  *first = false;
  out << StrFormat(
      "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
      "\"args\":{\"name\":\"%s\"}}",
      kind, pid, tid, label.c_str());
}

}  // namespace

std::string UnifiedTraceToJson(const UnifiedTraceInput& input) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;

  // Track/row labels first: every node present in a timeline or a span
  // gets a process row; (node, lane) pairs actually used get thread rows.
  std::set<int> nodes;
  std::set<std::pair<int, int>> lanes;
  for (size_t node = 0; node < input.node_timelines.size(); ++node) {
    for (const GpuInterval& interval : input.node_timelines[node]) {
      if (interval.end <= input.origin) {
        continue;
      }
      nodes.insert(static_cast<int>(node));
      lanes.insert({static_cast<int>(node), static_cast<int>(interval.kind)});
    }
  }
  std::vector<TraceSpan> spans;
  if (input.spans != nullptr) {
    spans = input.spans->spans();
    for (const TraceSpan& span : spans) {
      if (span.end <= input.origin) {
        continue;
      }
      nodes.insert(span.node);
      lanes.insert({span.node, span.lane});
    }
  }
  for (const int node : nodes) {
    AppendMetadata(out, &first, "process_name", StrFormat("node%d", node),
                   node, 0);
  }
  for (const auto& [node, lane] : lanes) {
    const std::string label =
        lane < kTraceLaneNetUplink
            ? StrFormat("gpu:%s",
                        GpuTaskKindName(static_cast<GpuTaskKind>(lane)))
            : TraceLaneName(lane);
    AppendMetadata(out, &first, "thread_name", label, node, lane);
  }

  for (size_t node = 0; node < input.node_timelines.size(); ++node) {
    for (const GpuInterval& interval : input.node_timelines[node]) {
      AppendEvent(out, &first, GpuTaskKindName(interval.kind), interval.start,
                  interval.end, static_cast<int>(node),
                  static_cast<int>(interval.kind), input.origin);
    }
  }
  for (const TraceSpan& span : spans) {
    AppendEvent(out, &first, span.name.c_str(), span.start, span.end,
                span.node, span.lane, input.origin);
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

Status WriteUnifiedTrace(const std::string& path,
                         const UnifiedTraceInput& input) {
  std::ofstream file(path);
  if (!file.good()) {
    return InvalidArgumentError("cannot open trace file: " + path);
  }
  file << UnifiedTraceToJson(input);
  if (!file.good()) {
    return InternalError("failed writing trace file: " + path);
  }
  return OkStatus();
}

Status WriteTrainReportTrace(const std::string& path,
                             const TrainReport& report) {
  if (report.node_timelines.empty() && report.timeline.empty() &&
      report.spans == nullptr) {
    return FailedPreconditionError(
        "report has no recorded timelines/spans; run with "
        "TrainOptions.record_timeline");
  }
  UnifiedTraceInput input;
  input.node_timelines = report.node_timelines;
  if (input.node_timelines.empty() && !report.timeline.empty()) {
    input.node_timelines.push_back(report.timeline);
  }
  input.spans = report.spans.get();
  input.origin = report.timeline_origin;
  return WriteUnifiedTrace(path, input);
}

}  // namespace hipress
