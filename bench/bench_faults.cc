// bench_faults — synchronization under an unhealthy network
// (docs/FAULT_TOLERANCE.md).
//
// Two panels:
//  1. loss sweep: iteration time / throughput / retransmit volume as the
//     per-message drop probability rises, compressed vs. uncompressed —
//     compression shrinks retransmit cost along with wire volume;
//  2. node crash: a scheduled mid-run failure, reporting detection +
//     recovery latency and the degraded-survivor throughput.
//
// Dumps BENCH_faults.json next to the human-readable text.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/string_util.h"
#include "src/net/fault.h"

using namespace hipress;
using namespace hipress::bench;

namespace {

TrainReport RunWithFaults(const std::string& model, const std::string& system,
                          const ClusterSpec& base, const std::string& spec) {
  HiPressOptions options;
  options.model = model;
  options.system = system;
  options.cluster = base;
  if (!spec.empty()) {
    auto faults = ParseFaultSpec(spec);
    if (!faults.ok()) {
      std::fprintf(stderr, "bad fault spec %s: %s\n", spec.c_str(),
                   faults.status().ToString().c_str());
      std::abort();
    }
    options.cluster.net.faults = *faults;
  }
  auto result = RunTrainingSimulation(options);
  if (!result.ok()) {
    std::fprintf(stderr, "bench run failed (%s/%s, faults %s): %s\n",
                 model.c_str(), system.c_str(), spec.c_str(),
                 result.status().ToString().c_str());
    std::abort();
  }
  return result->report;
}

void RecordFaultCounters(BenchReporter& reporter, const std::string& prefix,
                         const TrainReport& report) {
  reporter.registry()
      .counter(prefix + ".drops")
      .Increment(report.metrics->counter("net.drops").value());
  reporter.registry()
      .counter(prefix + ".retries")
      .Increment(report.metrics->counter("net.retries").value());
  reporter.registry()
      .gauge(prefix + ".retransmit_mb")
      .Set(ToMiB(report.metrics->counter("net.retransmit_bytes").value()));
}

}  // namespace

int main() {
  const ClusterSpec cluster = ClusterSpec::Ec2(8);
  const std::string model = "vgg19";
  BenchReporter reporter("faults");

  Header("loss sweep: vgg19, 8 nodes, compressed (hipress-ps) vs raw "
         "(byteps-oss)");
  std::printf("%-12s %8s %12s %10s %10s %14s\n", "system", "drop", "iter ms",
              "drops", "retries", "retransmit");
  for (const char* system : {"hipress-ps", "byteps-oss"}) {
    for (const double drop : {0.0, 0.001, 0.01, 0.05}) {
      const std::string spec =
          drop > 0.0 ? StrFormat("drop=%g,seed=13", drop) : std::string();
      const TrainReport report = RunWithFaults(model, system, cluster, spec);
      const std::string prefix =
          StrFormat("loss.%s.%g", system, drop);
      reporter.Record(prefix, report);
      RecordFaultCounters(reporter, prefix, report);
      std::printf("%-12s %8g %12.2f %10llu %10llu %14s\n", system, drop,
                  ToMillis(report.iteration_time),
                  static_cast<unsigned long long>(
                      report.metrics->counter("net.drops").value()),
                  static_cast<unsigned long long>(
                      report.metrics->counter("net.retries").value()),
                  HumanBytes(
                      report.metrics->counter("net.retransmit_bytes").value())
                      .c_str());
    }
  }

  Header("node crash: vgg19, 8 nodes, hipress-ps, node 5 dies 50 ms in");
  {
    const TrainReport clean = RunWithFaults(model, "hipress-ps", cluster, "");
    const TrainReport crashed =
        RunWithFaults(model, "hipress-ps", cluster, "crash=5@50");
    reporter.Record("crash.clean", clean);
    reporter.Record("crash.degraded", crashed);
    RecordFaultCounters(reporter, "crash.degraded", crashed);
    reporter.registry()
        .counter("crash.degraded.recoveries")
        .Increment(crashed.recoveries);
    reporter.registry()
        .gauge("crash.degraded.recovery_ms")
        .Set(ToMillis(crashed.recovery_time));
    reporter.registry()
        .gauge("crash.degraded.surviving_nodes")
        .Set(crashed.surviving_nodes);
    std::printf("clean:    %10.0f samples/s  iter %7.2f ms  (%d nodes)\n",
                clean.throughput, ToMillis(clean.iteration_time),
                cluster.num_nodes);
    std::printf("degraded: %10.0f samples/s  iter %7.2f ms  "
                "(%d survivors, %llu recoveries, %.2f ms recovering)\n",
                crashed.throughput, ToMillis(crashed.iteration_time),
                crashed.surviving_nodes,
                static_cast<unsigned long long>(crashed.recoveries),
                ToMillis(crashed.recovery_time));
    if (!crashed.degraded || crashed.recoveries == 0) {
      std::fprintf(stderr, "crash scenario did not degrade the run\n");
      return 1;
    }
  }

  reporter.Write();
  return 0;
}
