// bench_critical_path — critical-path attribution shares and cost-model
// drift audit (docs/COST_MODEL.md).
//
// For each model/system pair this runs the training simulation, records
// where the measured iteration's wall time went along the critical path
// ("<case>.cp.<category>_ms" and "<case>.cp.share.<category>"), and copies
// the engine's cost-model audit ("costmodel.err.<primitive>" relative
// errors plus sample counts) into BENCH_critical_path.json.
//
// The bench doubles as a regression gate: it exits non-zero when the
// attribution stops summing to the iteration time, or when any primitive's
// mean relative error exceeds a (generous) drift bound — kernels execute at
// exactly their modelled service time, so kernel drift means the engine and
// the speed profile have diverged; send drift is real queueing/batching and
// gets a much looser bound.
//
//   bench_critical_path [--smoke]   (--smoke: one small case, for CI)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/profiler.h"

using namespace hipress;

namespace {

// Kernel samples replay the calibrated lines, so anything beyond rounding
// is cost-model rot. Sends run through coordinator batching and endpoint
// contention the uncontended model ignores; the bound is intentionally
// loose and only catches wholesale model breakage.
constexpr double kKernelErrorBound = 0.5;
constexpr double kSendErrorBound = 50.0;
// Attribution must sum to the iteration wall time (5% slack).
constexpr double kAttributionSlack = 0.05;

const char* kCpNames[] = {"compute", "encode", "merge", "send",
                          "recv",    "decode", "wait"};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::BenchReporter reporter("critical_path");

  struct Case {
    const char* model;
    const char* system;
    int nodes;
  };
  std::vector<Case> cases;
  if (smoke) {
    cases = {{"vgg19", "hipress-ps", 4}};
  } else {
    cases = {{"vgg19", "hipress-ps", 8},
             {"vgg19", "ring-oss", 8},
             {"bert-large", "hipress-ps", 8},
             {"lstm", "hipress-ring", 8}};
  }

  bool ok = true;
  double max_err[kNumCostPrimitives] = {};
  for (const Case& c : cases) {
    bench::Header((std::string(c.model) + " / " + c.system).c_str());
    const ClusterSpec cluster = ClusterSpec::Ec2(c.nodes);
    const TrainReport report = bench::Run(c.model, c.system, cluster);
    const std::string prefix = std::string(c.model) + "." + c.system;
    reporter.Record(prefix, report);

    const CpAttribution& cp = report.cp_attribution;
    const double iter_ms = ToMillis(report.iteration_time);
    const double sum_ms = ToMillis(cp.total());
    std::printf("iteration %.2f ms, attribution sum %.2f ms, chain", iter_ms,
                sum_ms);
    for (int i = 0; i < kNumCpCategories; ++i) {
      const CpCategory category = static_cast<CpCategory>(i);
      reporter.registry()
          .gauge(prefix + ".cp." + kCpNames[i] + "_ms")
          .Set(ToMillis(cp[category]));
      reporter.registry()
          .gauge(prefix + ".cp.share." + kCpNames[i])
          .Set(cp.Share(category));
      std::printf(" %s=%.1f%%", kCpNames[i], cp.Share(category) * 100.0);
    }
    std::printf("\n");
    if (iter_ms > 0 &&
        std::fabs(sum_ms - iter_ms) > kAttributionSlack * iter_ms) {
      std::fprintf(stderr,
                   "FAIL %s: attribution sum %.3f ms vs iteration %.3f ms\n",
                   prefix.c_str(), sum_ms, iter_ms);
      ok = false;
    }

    for (int p = 0; p < kNumCostPrimitives; ++p) {
      const char* name = CostPrimitiveName(static_cast<CostPrimitive>(p));
      const double err =
          report.metrics->gauge_value(std::string("costmodel.err.") + name);
      const uint64_t samples = report.metrics->counter_value(
          std::string("costmodel.samples.") + name);
      reporter.registry()
          .gauge(prefix + ".costmodel.err." + name)
          .Set(err);
      max_err[p] = std::max(max_err[p], err);
      std::printf("costmodel %-6s err %8.4f over %llu samples\n", name, err,
                  static_cast<unsigned long long>(samples));
    }
  }

  // Worst drift across the cases, and the gate.
  for (int p = 0; p < kNumCostPrimitives; ++p) {
    const CostPrimitive primitive = static_cast<CostPrimitive>(p);
    const char* name = CostPrimitiveName(primitive);
    reporter.registry().gauge(std::string("costmodel.err.") + name)
        .Set(max_err[p]);
    const double bound =
        primitive == CostPrimitive::kSend ? kSendErrorBound : kKernelErrorBound;
    if (max_err[p] > bound) {
      std::fprintf(stderr, "FAIL: costmodel.err.%s = %.4f exceeds %.2f\n",
                   name, max_err[p], bound);
      ok = false;
    }
  }

  reporter.Write();
  if (!ok) {
    std::fprintf(stderr, "bench_critical_path: gate failed\n");
    return 1;
  }
  return 0;
}
