// Figure 13: convergence validation — compression-enabled training reaches
// the same quality as the no-compression baseline in a comparable number of
// iterations, while each iteration is cheaper, so wall-clock convergence is
// faster.
//
// Substitution (see DESIGN.md): the paper trains LSTM (perplexity 86.28)
// and ResNet50 (accuracy 77.11%) on 32 GPUs. We train a real MLP on a
// synthetic classification task through the real CaSync dataflow + codecs
// with error feedback, and combine the measured steps-to-target with the
// per-iteration times of the corresponding simulated systems (Ring vs
// HiPress-CaSync-Ring(DGC), BytePS vs HiPress-CaSync-PS(TernGrad)).
#include "bench/bench_util.h"
#include "src/minidnn/dist_trainer.h"

using namespace hipress;
using namespace hipress::bench;

namespace {

struct CurveResult {
  DistTrainResult train;
  double seconds_per_step;
};

CurveResult RunCurve(const char* algorithm, StrategyKind strategy,
                     const char* model, const char* system,
                     const char* sim_algorithm) {
  DistTrainConfig config;
  config.num_workers = 4;
  config.batch_per_worker = 32;
  config.learning_rate = 0.05f;
  config.momentum = 0.9f;
  config.algorithm = algorithm ? algorithm : "";
  config.strategy = strategy;
  config.codec_params.sparsity_ratio = 0.25;
  config.codec_params.bitwidth = 4;
  // Harder task than the unit tests use, so the curves have a visible
  // climb (the paper's plots span hours of training).
  config.task.cluster_spread = 1.25f;
  config.learning_rate = 0.04f;
  auto trainer = DistTrainer::Create(config);
  if (!trainer.ok()) {
    std::fprintf(stderr, "fig13: %s\n", trainer.status().ToString().c_str());
    std::abort();
  }
  auto result = (*trainer)->Train(200, 5, 0.88);
  if (!result.ok()) {
    std::fprintf(stderr, "fig13: %s\n", result.status().ToString().c_str());
    std::abort();
  }

  const TrainReport report =
      Run(model, system, ClusterSpec::Local(16), sim_algorithm);
  CurveResult curve;
  curve.train = *result;
  curve.seconds_per_step = ToSeconds(report.iteration_time);
  return curve;
}

void Panel(const char* title, StrategyKind strategy, const char* algorithm,
           const char* model, const char* base_system,
           const char* hipress_system, const char* sim_algorithm) {
  Header(title);
  const CurveResult base =
      RunCurve(nullptr, strategy, model, base_system, sim_algorithm);
  const CurveResult compressed =
      RunCurve(algorithm, strategy, model, hipress_system, sim_algorithm);

  std::printf("%-26s %10s %12s %14s %14s\n", "Run", "steps@88%",
              "final acc", "sec/step", "time-to-88%");
  auto row = [](const char* label, const CurveResult& curve) {
    const int steps = curve.train.steps_to_target;
    std::printf("%-26s %10d %11.1f%% %13.4f %13.1fs\n", label, steps,
                curve.train.final_accuracy * 100.0, curve.seconds_per_step,
                steps > 0 ? steps * curve.seconds_per_step : -1.0);
  };
  row("no compression", base);
  row(algorithm, compressed);

  std::printf("\ncurves (eval accuracy %% and train perplexity):\n");
  std::printf("%-6s %12s %12s %12s %12s\n", "step", "base acc", "cpr acc",
              "base ppl", "cpr ppl");
  for (size_t i = 0; i < base.train.curve.size() &&
                     i < compressed.train.curve.size();
       i += 2) {
    std::printf("%-6d %11.1f%% %11.1f%% %12.3f %12.3f\n",
                base.train.curve[i].step,
                base.train.curve[i].accuracy * 100.0,
                compressed.train.curve[i].accuracy * 100.0,
                base.train.curve[i].perplexity,
                compressed.train.curve[i].perplexity);
  }
}

}  // namespace

int main() {
  Panel("Figure 13 (left, LSTM-substitute): Ring vs CaSync-Ring(DGC)",
        StrategyKind::kRing, "dgc", "lstm", "ring", "hipress-ring", "dgc");
  Panel("Figure 13 (right, ResNet50-substitute): PS vs CaSync-PS(TernGrad)",
        StrategyKind::kPs, "terngrad", "resnet50", "byteps", "hipress-ps",
        "terngrad");
  std::printf(
      "\npaper: compression converges to the same perplexity/accuracy with "
      "up to 28.6%% less wall-clock time\n");
  return 0;
}
