// bench_membership — elastic membership: planned churn and the chaos-soak
// gate (docs/FAULT_TOLERANCE.md).
//
// Two panels:
//  1. planned churn: a scheduled leave, a standby join, and a crash+rejoin
//     on a 4-node cluster, reporting drain/re-sync cost and checking the
//     post-quiesce model state against the churn-free run;
//  2. chaos soak (the gate): a seeded MakeChaosSchedule run interleaving
//     crashes, rejoins, joins, leaves and link degradations. The bench
//     exits non-zero unless the run completes, the post-quiesce model
//     state is bit-identical to the churn-free run with the same seed, a
//     second run replays the membership event log byte-for-byte, a
//     crashed node rejoins and contributes compute again, the final
//     iteration's wire path serves entirely from pooled buffers
//     (steady-state misses == 0), and the re-sync/recovery time stays
//     inside budget.
//
// `--smoke` shrinks the soak for CI's bench-smoke job; the default run is
// the full 200-iteration gate. Dumps BENCH_membership.json next to the
// human-readable text.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "src/common/string_util.h"
#include "src/net/fault.h"

using namespace hipress;
using namespace hipress::bench;

namespace {

TrainReport RunElastic(const std::string& model, const ClusterSpec& base,
                       const FaultConfig& faults, int iterations) {
  HiPressOptions options;
  options.model = model;
  options.system = "hipress-ps";
  options.cluster = base;
  options.cluster.net.faults = faults;
  options.train.iterations = iterations;
  auto result = RunTrainingSimulation(options);
  if (!result.ok()) {
    std::fprintf(stderr, "bench run failed (%s, %d iterations): %s\n",
                 model.c_str(), iterations, result.status().ToString().c_str());
    std::abort();
  }
  return result->report;
}

FaultConfig ParseOrDie(const std::string& spec) {
  auto faults = ParseFaultSpec(spec);
  if (!faults.ok()) {
    std::fprintf(stderr, "bad fault spec %s: %s\n", spec.c_str(),
                 faults.status().ToString().c_str());
    std::abort();
  }
  return *faults;
}

void RecordMembership(BenchReporter& reporter, const std::string& prefix,
                      const MembershipReport& m) {
  MetricsRegistry& reg = reporter.registry();
  reg.gauge(prefix + ".final_epoch").Set(static_cast<double>(m.final_epoch));
  reg.gauge(prefix + ".final_members")
      .Set(static_cast<double>(m.final_members.size()));
  reg.gauge(prefix + ".joins").Set(static_cast<double>(m.joins));
  reg.gauge(prefix + ".leaves").Set(static_cast<double>(m.leaves));
  reg.gauge(prefix + ".crashes").Set(static_cast<double>(m.crashes));
  reg.gauge(prefix + ".rejoins").Set(static_cast<double>(m.rejoins));
  reg.gauge(prefix + ".resyncs").Set(static_cast<double>(m.resyncs));
  reg.gauge(prefix + ".resync_mb").Set(ToMiB(m.resync_bytes));
  reg.gauge(prefix + ".resync_ms").Set(ToMillis(m.resync_time));
  reg.gauge(prefix + ".rejoined_contributions")
      .Set(static_cast<double>(m.rejoined_contributions));
  reg.gauge(prefix + ".state_consistent").Set(m.state_consistent ? 1.0 : 0.0);
  // Gauges are doubles; the low 32 bits are exactly representable, enough
  // to pin the fingerprint against the checked-in baseline.
  reg.gauge(prefix + ".fingerprint_low32")
      .Set(static_cast<double>(m.model_fingerprint & 0xffffffffull));
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const std::string model = "resnet50";
  const ClusterSpec cluster = ClusterSpec::Ec2(4);
  BenchReporter reporter("membership");
  int failures = 0;
  auto gate = [&failures](bool ok, const std::string& what) {
    std::printf("  gate %-52s %s\n", what.c_str(), ok ? "ok" : "FAILED");
    if (!ok) ++failures;
  };

  Header("planned churn: resnet50, 4 nodes, hipress-ps, 8 iterations");
  {
    const TrainReport clean = RunElastic(model, cluster, FaultConfig{}, 8);
    const uint64_t clean_fp = clean.membership.model_fingerprint;
    struct Scenario {
      const char* name;
      const char* spec;
    };
    const Scenario scenarios[] = {
        {"leave", "leave=2@60"},
        {"join", "standby=3,join=3@60"},
        {"rejoin", "crash=1@60,rejoin=1@400"},
    };
    std::printf("%-8s %10s %8s %10s %10s %12s %8s\n", "event", "iter ms",
                "epoch", "resyncs", "resync", "resync ms", "state");
    for (const Scenario& s : scenarios) {
      const TrainReport report =
          RunElastic(model, cluster, ParseOrDie(s.spec), 8);
      const MembershipReport& m = report.membership;
      const std::string prefix = StrFormat("planned.%s", s.name);
      reporter.Record(prefix, report);
      RecordMembership(reporter, prefix, m);
      const bool converged = m.model_fingerprint == clean_fp;
      reporter.registry()
          .gauge(prefix + ".fingerprint_match")
          .Set(converged ? 1.0 : 0.0);
      std::printf("%-8s %10.2f %8llu %10llu %10s %12.2f %8s\n", s.name,
                  ToMillis(report.iteration_time),
                  static_cast<unsigned long long>(m.final_epoch),
                  static_cast<unsigned long long>(m.resyncs),
                  HumanBytes(m.resync_bytes).c_str(), ToMillis(m.resync_time),
                  m.state_consistent ? "ok" : "DIVERGED");
      gate(m.enabled && m.state_consistent && converged,
           StrFormat("planned %s converges to churn-free state", s.name));
    }
  }

  // The soak proper: the full run is the acceptance gate (200+ iterations,
  // >= 6 interleaved events); --smoke keeps the same topology and gates
  // but shortens the run for CI.
  ChaosOptions chaos;
  chaos.seed = 29;
  chaos.num_nodes = 4;
  chaos.num_standby = 1;
  chaos.events = smoke ? 6 : 8;
  chaos.first_event_ms = 40.0;
  chaos.spacing_ms = smoke ? 60.0 : 150.0;
  const int iterations = smoke ? 40 : 200;
  const FaultConfig schedule = MakeChaosSchedule(chaos);

  Header(StrFormat("chaos soak: resnet50, %d nodes (+%d standby), seed %llu, "
                   "%d events, %d iterations%s",
                   chaos.num_nodes - chaos.num_standby, chaos.num_standby,
                   static_cast<unsigned long long>(chaos.seed), chaos.events,
                   iterations, smoke ? " [smoke]" : "")
             .c_str());
  const TrainReport soak = RunElastic(model, cluster, schedule, iterations);
  const MembershipReport& m = soak.membership;
  const uint64_t transitions = m.joins + m.leaves + m.crashes + m.rejoins;
  std::printf("epoch %llu, members %zu/%d, %llu join(s) %llu leave(s) "
              "%llu crash(es) %llu rejoin(s), %zu degradation window(s)\n",
              static_cast<unsigned long long>(m.final_epoch),
              m.final_members.size(), chaos.num_nodes,
              static_cast<unsigned long long>(m.joins),
              static_cast<unsigned long long>(m.leaves),
              static_cast<unsigned long long>(m.crashes),
              static_cast<unsigned long long>(m.rejoins),
              schedule.degradations.size());
  std::printf("%llu resync(s) (%s, %.2f ms), %llu rejoined contribution(s), "
              "fingerprint %016llx\n",
              static_cast<unsigned long long>(m.resyncs),
              HumanBytes(m.resync_bytes).c_str(), ToMillis(m.resync_time),
              static_cast<unsigned long long>(m.rejoined_contributions),
              static_cast<unsigned long long>(m.model_fingerprint));
  std::printf("%s", m.event_log.c_str());

  // Replay: the same schedule must reproduce the transition history and
  // the model state bit-for-bit.
  const TrainReport replay = RunElastic(model, cluster, schedule, iterations);
  // Churn-free reference: same state seed, no events.
  FaultConfig churn_free;
  churn_free.seed = schedule.seed;
  const TrainReport reference =
      RunElastic(model, cluster, churn_free, iterations);

  const double total_ms = ToMillis(soak.iteration_time) * iterations;
  const bool replay_match =
      replay.membership.event_log == m.event_log &&
      replay.membership.model_fingerprint == m.model_fingerprint;
  const bool fingerprint_match =
      m.model_fingerprint == reference.membership.model_fingerprint;
  const double steady_pool_misses =
      soak.metrics->gauge("net.step_pool_misses").value();

  std::printf("\n");
  gate(m.enabled, "soak run completes with membership enabled");
  gate(transitions + schedule.degradations.size() >=
           static_cast<uint64_t>(chaos.events),
       StrFormat("interleaved events >= %d", chaos.events));
  gate(m.crashes >= 1 && m.rejoins >= 1, "a crashed node rejoins");
  gate(m.rejoined_contributions >= 1, "rejoined node contributes compute");
  gate(m.state_consistent, "final members hold identical state");
  gate(fingerprint_match, "state bit-identical to churn-free run");
  gate(replay_match, "event log + state replay bit-identically");
  gate(steady_pool_misses == 0.0, "steady-state wire pool misses == 0");
  gate(ToMillis(m.resync_time) <= 0.10 * total_ms,
       "drain + re-sync time within 10% of run");
  gate(ToMillis(soak.recovery_time) <= 0.10 * total_ms,
       "crash recovery time within 10% of run");

  reporter.Record("soak", soak);
  RecordMembership(reporter, "soak", m);
  MetricsRegistry& reg = reporter.registry();
  reg.gauge("soak.iterations").Set(iterations);
  reg.gauge("soak.transitions").Set(static_cast<double>(transitions));
  reg.gauge("soak.fingerprint_match").Set(fingerprint_match ? 1.0 : 0.0);
  reg.gauge("soak.replay_match").Set(replay_match ? 1.0 : 0.0);
  reg.gauge("soak.steady_pool_misses").Set(steady_pool_misses);
  reg.gauge("soak.recovery_ms").Set(ToMillis(soak.recovery_time));
  reporter.Record("soak.churn_free", reference);

  reporter.Write();
  if (failures > 0) {
    std::fprintf(stderr, "\n%d chaos-soak gate(s) failed\n", failures);
    return 1;
  }
  return 0;
}
