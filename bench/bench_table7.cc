// Table 7: SeCoPa's compression and partitioning plans for CompLL-onebit,
// for gradient sizes 4 MB / 16 MB / 392 MB under CaSync-PS and CaSync-Ring
// on 4-node and 16-node EC2 clusters. Each cell is <compress?, partitions>.
//
// Paper values:
//            CaSync-PS 4N   CaSync-PS 16N   CaSync-Ring 4N   CaSync-Ring 16N
//   4 MB     <yes, 2>       <yes, 1>        <yes, 1>         <no, 16>
//   16 MB    <yes, 4>       <yes, 6>        <yes, 4>         <yes, 5>
//   392 MB   <yes, 12>      <yes, 16>       <yes, 4>         <yes, 16>
#include <cstdio>

#include "src/casync/secopa.h"
#include "src/common/string_util.h"
#include "src/compress/registry.h"
#include "src/strategies/presets.h"

using namespace hipress;

int main() {
  std::printf("\n==== Table 7: selective compression & partitioning plans "
              "(CompLL-onebit) ====\n");
  auto codec = CreateCompressor("onebit");
  const double rate = (*codec)->CompressionRate(1 << 20);

  const uint64_t sizes[] = {4 * kMiB, 16 * kMiB, 392 * kMiB};
  std::printf("%-10s", "Gradient");
  for (const char* column : {"PS 4 nodes", "PS 16 nodes", "Ring 4 nodes",
                             "Ring 16 nodes"}) {
    std::printf(" %14s", column);
  }
  std::printf("\n");

  for (const uint64_t bytes : sizes) {
    std::printf("%-10s", HumanBytes(bytes).c_str());
    for (const StrategyKind strategy :
         {StrategyKind::kPs, StrategyKind::kRing}) {
      for (const int nodes : {4, 16}) {
        ClusterSpec cluster = ClusterSpec::Ec2(nodes);
        SyncConfig config;
        config.strategy = strategy;
        config.num_nodes = nodes;
        config.algorithm = "onebit";
        config.net = cluster.net;
        config.platform = cluster.platform;
        SeCoPaPlanner planner(config, rate);
        const SyncPlan plan = planner.Plan(bytes);
        std::printf("      <%s,%2d>", plan.compress ? "yes" : " no",
                    plan.partitions);
      }
    }
    std::printf("\n");
  }
  std::printf("\ncolumns are PS{4,16} then Ring{4,16} nodes; "
              "paper table reproduced in the header comment\n");
  return 0;
}
