// bench_sim_scale — the thousand-node scalability gate for the DES core
// (docs/TOPOLOGY.md).
//
// Four panels:
//  1. scale: a 1024-node, 4-job concurrent training sweep on a 3:1
//     oversubscribed fat tree, through the calendar-queue scheduler. Gates
//     the wall-clock budget and zero steady-state scheduler-pool misses
//     (the event-record arena must stop allocating once every job has
//     completed one iteration).
//  2. speedup: the same synthetic event churn driven through the new
//     scheduler and through a faithful copy of the old engine (global
//     std::priority_queue of heap-allocated std::function callbacks).
//     Gates >= 1.5x events/sec. Honest note: on commodity hardware both
//     engines are DRAM-latency-bound at depth (each pending record is a
//     compulsory cache miss either way), so the measured gap is ~1.9-2.3x
//     across depths 8K-1M, not the ~10x that ladder-queue papers report
//     against compute-bound comparison workloads. The gate is set at the
//     measured value with margin rather than an aspirational multiple —
//     a bench that can only pass on hardware we don't have gates nothing.
//  3. replay: the scale sweep runs twice from identical options; the
//     FNV-1a fingerprints over every job's per-iteration completion times
//     must match bit-for-bit.
//  4. contention: 4 striped jobs on an oversubscribed fat tree versus one
//     solo job on its own slice — the multi-job iteration must be strictly
//     slower (cross-job ToR/spine interference is real, not modeled away).
//
// Dumps BENCH_sim_scale.json (archived by CI bench-smoke, diffed against
// bench/baselines by bench-regression; wall-clock metrics are skipped
// there, fingerprints are exact-match). Exits non-zero when any gate
// fails. `--smoke` (or HIPRESS_BENCH_SMOKE=1) shrinks the sweep for CI.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <queue>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/simulator.h"
#include "src/train/cluster_job.h"

using namespace hipress;
using namespace hipress::bench;

namespace {

bool g_failed = false;

void Gate(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) {
    g_failed = true;
  }
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// ---------------------------------------------------------------------
// Panel 2 reference: faithful copy of the pre-calendar-queue engine — one
// global binary heap of events, each carrying a std::function whose
// captures the small-buffer optimization cannot hold, so every Schedule
// heap-allocates.
// ---------------------------------------------------------------------
class HeapSimulator {
 public:
  SimTime now() const { return now_; }
  uint64_t events_processed() const { return events_processed_; }

  void Schedule(SimTime delay, std::function<void()> fn) {
    queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
  }

  SimTime Run() {
    while (!queue_.empty()) {
      Event event = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = event.when;
      ++events_processed_;
      event.fn();
    }
    return now_;
  }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

uint64_t g_churn_sink = 0;

// Synthetic scheduler churn shaped like the simulator's real load: `actors`
// concurrent timelines (the pending-event depth), each handler doing a
// little arithmetic and rescheduling itself at a pseudo-random offset. The
// 72-byte capture mirrors the network/engine callbacks (message + context),
// which is exactly what the old engine heap-allocated per event.
template <typename Sim>
double ChurnEventsPerSecond(Sim* sim, int actors, uint64_t events) {
  uint64_t remaining = events;
  uint64_t rng = 0x9e3779b97f4a7c15ULL;
  std::function<void()> fire = [&] {
    if (remaining == 0) {
      return;
    }
    --remaining;
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    const SimTime delay = static_cast<SimTime>(rng >> 44) + 1;
    const uint64_t p0 = rng, p1 = rng ^ 0x1111, p2 = rng ^ 0x2222,
                   p3 = rng ^ 0x3333, p4 = rng ^ 0x4444, p5 = rng ^ 0x5555,
                   p6 = rng ^ 0x6666, p7 = rng ^ 0x7777;
    sim->Schedule(delay, [&fire, p0, p1, p2, p3, p4, p5, p6, p7] {
      g_churn_sink += p0 + p1 + p2 + p3 + p4 + p5 + p6 + p7;
      fire();
    });
  };
  for (int a = 0; a < actors; ++a) {
    fire();
  }
  const auto start = std::chrono::steady_clock::now();
  sim->Run();
  const double wall = Seconds(start);
  return wall > 0 ? static_cast<double>(sim->events_processed()) / wall : 0;
}

ClusterJobsOptions ScaleOptions(int nodes, int jobs, int iterations) {
  ClusterJobsOptions options;
  options.cluster = ClusterSpec::Ec2(nodes);
  options.cluster.net.topology.kind = TopologyKind::kFatTree;
  options.cluster.net.topology.oversubscription = 3.0;
  options.cluster.net.topology.hosts_per_tor = 16;
  options.placement = JobPlacement::kStriped;
  for (int k = 0; k < jobs; ++k) {
    ClusterJobSpec spec;
    spec.model = "resnet50";
    spec.system = "hipress-ps";
    spec.algorithm = "onebit";
    spec.iterations = iterations;
    options.jobs.push_back(spec);
  }
  return options;
}

ClusterRunReport MustRun(const ClusterJobsOptions& options) {
  auto run = RunClusterJobs(options);
  if (!run.ok()) {
    std::fprintf(stderr, "cluster run failed: %s\n",
                 run.status().ToString().c_str());
    std::abort();
  }
  return *std::move(run);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = std::getenv("HIPRESS_BENCH_SMOKE") != nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  BenchReporter reporter("sim_scale");
  MetricsRegistry& registry = reporter.registry();

  // -------------------------------------------------------------------
  // Panel 1: the thousand-node multi-job sweep.
  // -------------------------------------------------------------------
  const int nodes = smoke ? 256 : 1024;
  const int jobs = smoke ? 2 : 4;
  const int iterations = 2;
  const double wall_budget = smoke ? 20.0 : 60.0;
  Header("scale: concurrent jobs on an oversubscribed fat tree");
  const ClusterJobsOptions scale_options =
      ScaleOptions(nodes, jobs, iterations);
  const ClusterRunReport scale = MustRun(scale_options);
  const double sim_per_wall =
      scale.wall_seconds > 0 ? ToSeconds(scale.sim_time) / scale.wall_seconds
                             : 0;
  std::printf(
      "  %d nodes x %d jobs, %d iterations: %llu events in %.2fs wall "
      "(%.2fM events/s, %.2f sim-s/wall-s, peak depth %llu)\n",
      nodes, jobs, iterations,
      static_cast<unsigned long long>(scale.events_processed),
      scale.wall_seconds, scale.events_per_wall_second / 1e6, sim_per_wall,
      static_cast<unsigned long long>(scale.queue_peak_depth));
  registry.gauge("scale.nodes").Set(nodes);
  registry.gauge("scale.jobs").Set(jobs);
  registry.gauge("scale.events")
      .Set(static_cast<double>(scale.events_processed));
  registry.gauge("scale.events_per_wall_second")
      .Set(scale.events_per_wall_second);
  registry.gauge("scale.sim_seconds_per_wall_second").Set(sim_per_wall);
  registry.gauge("scale.wall_seconds").Set(scale.wall_seconds);
  registry.gauge("scale.queue_peak_depth")
      .Set(static_cast<double>(scale.queue_peak_depth));
  registry.gauge("scale.steady_sched_pool_misses")
      .Set(static_cast<double>(scale.steady_sched_pool_misses));
  registry.gauge("scale.iteration_ms")
      .Set(ToMillis(scale.jobs[0].iteration_time));
  Gate(scale.wall_seconds < wall_budget, "scale sweep within wall budget");
  Gate(scale.steady_sched_pool_misses == 0,
       "zero scheduler-pool misses in steady state");

  // -------------------------------------------------------------------
  // Panel 2: calendar queue vs the old global heap.
  // -------------------------------------------------------------------
  Header("speedup: calendar queue vs heap-of-std::function");
  const int actors = smoke ? 8192 : 32768;
  const uint64_t churn_events = smoke ? 1000000 : 4000000;
  Simulator fast;
  const double new_eps = ChurnEventsPerSecond(&fast, actors, churn_events);
  HeapSimulator heap;
  const double old_eps = ChurnEventsPerSecond(&heap, actors, churn_events);
  const double ratio = old_eps > 0 ? new_eps / old_eps : 0;
  std::printf(
      "  depth %d: calendar %.2fM events/s, heap %.2fM events/s "
      "-> %.1fx\n",
      actors, new_eps / 1e6, old_eps / 1e6, ratio);
  registry.gauge("speedup.calendar_events_per_second").Set(new_eps);
  registry.gauge("speedup.heap_events_per_second").Set(old_eps);
  registry.gauge("speedup.ratio").Set(ratio);
  // Measured honestly at ~1.9-2.3x on this class of hardware (see the
  // header comment); gated with margin below the worst observed depth.
  Gate(ratio >= 1.5, "calendar queue >= 1.5x the old heap");

  // -------------------------------------------------------------------
  // Panel 3: bit-identical replay.
  // -------------------------------------------------------------------
  Header("replay: same options, same fingerprint");
  const ClusterRunReport again = MustRun(scale_options);
  std::printf("  fingerprint %016llx vs %016llx\n",
              static_cast<unsigned long long>(scale.replay_fingerprint),
              static_cast<unsigned long long>(again.replay_fingerprint));
  registry.gauge("replay.fingerprint_low32")
      .Set(static_cast<double>(scale.replay_fingerprint & 0xffffffffULL));
  registry.gauge("replay.fingerprint_high32")
      .Set(static_cast<double>(scale.replay_fingerprint >> 32));
  registry.gauge("replay.match")
      .Set(scale.replay_fingerprint == again.replay_fingerprint ? 1.0 : 0.0);
  Gate(scale.replay_fingerprint == again.replay_fingerprint,
       "replay fingerprints bit-identical");

  // -------------------------------------------------------------------
  // Panel 4: cross-job contention vs a solo slice.
  // -------------------------------------------------------------------
  Header("contention: striped multi-job vs solo slice");
  auto contention_options = [&](int n, int k) {
    ClusterJobsOptions options;
    options.cluster = ClusterSpec::Ec2(n);
    options.cluster.net.link_bandwidth = Bandwidth::Gbps(10.0);
    options.cluster.net.topology.kind = TopologyKind::kFatTree;
    options.cluster.net.topology.oversubscription = 4.0;
    options.cluster.net.topology.hosts_per_tor = 4;
    options.placement = JobPlacement::kStriped;
    for (int j = 0; j < k; ++j) {
      ClusterJobSpec spec;
      spec.model = "vgg19";
      spec.system = "byteps";  // uncompressed: the wire dominates
      spec.iterations = 2;
      options.jobs.push_back(spec);
    }
    return options;
  };
  const ClusterRunReport multi = MustRun(contention_options(64, 4));
  const ClusterRunReport solo = MustRun(contention_options(16, 1));
  const double multi_ms = ToMillis(multi.jobs[0].iteration_time);
  const double solo_ms = ToMillis(solo.jobs[0].iteration_time);
  std::printf(
      "  solo %.2f ms -> 4 striped jobs %.2f ms (stretch %.2fx, "
      "send share %.1f%%)\n",
      solo_ms, multi_ms, solo_ms > 0 ? multi_ms / solo_ms : 0,
      multi.jobs[0].send_share * 100.0);
  registry.gauge("contention.solo_iteration_ms").Set(solo_ms);
  registry.gauge("contention.multi_iteration_ms").Set(multi_ms);
  registry.gauge("contention.stretch")
      .Set(solo_ms > 0 ? multi_ms / solo_ms : 0);
  registry.gauge("contention.multi_send_share")
      .Set(multi.jobs[0].send_share);
  Gate(multi_ms > solo_ms, "multi-job iteration strictly slower than solo");

  reporter.Write();
  if (g_failed) {
    std::printf("\nBENCH FAILED\n");
    return 1;
  }
  std::printf("\nall gates passed\n");
  return 0;
}
