// Figure 12: sensitivity studies.
//   (a) Network bandwidth: Bert-base with HiPress-CaSync-PS(onebit) on the
//       EC2 cluster at 100 vs 25 Gbps and the local cluster at 56 vs
//       10 Gbps — speedup over the non-compression baseline should hold at
//       low bandwidth (HiPress needs no exotic networks).
//   (b) Compression rate: VGG19 with CaSync-PS on the local cluster,
//       TernGrad at 2/4/8-bit and DGC at 0.1/1/5%.
#include "bench/bench_util.h"

using namespace hipress;
using namespace hipress::bench;

namespace {

void BandwidthRow(const char* label, ClusterSpec cluster, double gbps) {
  cluster.net.link_bandwidth =
      Bandwidth::Gbps(gbps * (cluster.platform == GpuPlatform::kV100
                                  ? 0.75   // EC2 goodput derate
                                  : 44.0 / 56.0));
  const TrainReport base = Run("bert-base", "ring", cluster, "onebit");
  const TrainReport hipress = Run("bert-base", "hipress-ps", cluster,
                                  "onebit");
  std::printf("%-28s %14.0f %14.0f %9.2fx\n", label, base.throughput,
              hipress.throughput, hipress.throughput / base.throughput);
}

}  // namespace

int main() {
  Header("Figure 12a: impact of network bandwidth (Bert-base)");
  std::printf("%-28s %14s %14s %10s\n", "Network", "Ring (base)",
              "HiPress-PS", "speedup");
  BandwidthRow("EC2 100Gbps (16 nodes)", ClusterSpec::Ec2(16), 100.0);
  BandwidthRow("EC2 25Gbps  (16 nodes)", ClusterSpec::Ec2(16), 25.0);
  BandwidthRow("local 56Gbps (16 nodes)", ClusterSpec::Local(16), 56.0);
  BandwidthRow("local 10Gbps (16 nodes)", ClusterSpec::Local(16), 10.0);
  std::printf("\npaper: similar HiPress speedups at high and low bandwidth\n");

  Header("Figure 12b: impact of compression rate (VGG19, CaSync-PS, local)");
  // Two network settings: the paper's 56 Gbps cluster (where our simulated
  // pipeline hides most of the extra volume) and a 10 Gbps variant where
  // synchronization is clearly the bottleneck and the paper's trend is
  // fully visible.
  for (double gbps : {56.0, 10.0}) {
    ClusterSpec cluster = ClusterSpec::Local(16);
    cluster.net.link_bandwidth = Bandwidth::Gbps(gbps * 44.0 / 56.0);
    std::printf("\n-- %2.0f Gbps --\n", gbps);
    std::printf("%-28s %14s %10s\n", "Algorithm", "samples/sec", "vs best");

    double terngrad_best = 0.0;
    for (unsigned bitwidth : {2u, 4u, 8u}) {
      CompressorParams params;
      params.bitwidth = bitwidth;
      const TrainReport report =
          Run("vgg19", "hipress-ps", cluster, "terngrad", params);
      if (bitwidth == 2) {
        terngrad_best = report.throughput;
      }
      std::printf("TernGrad %u-bit %13s %14.0f %9.1f%%\n", bitwidth, "",
                  report.throughput,
                  100.0 * (report.throughput / terngrad_best - 1.0));
    }
    double dgc_best = 0.0;
    for (double ratio : {0.001, 0.01, 0.05}) {
      CompressorParams params;
      params.sparsity_ratio = ratio;
      const TrainReport report =
          Run("vgg19", "hipress-ps", cluster, "dgc", params);
      if (ratio == 0.001) {
        dgc_best = report.throughput;
      }
      std::printf("DGC %.1f%% %18s %14.0f %9.1f%%\n", ratio * 100.0, "",
                  report.throughput,
                  100.0 * (report.throughput / dgc_best - 1.0));
    }
  }
  std::printf(
      "\npaper: TernGrad 2->4/8-bit drops 12.8%%/23.6%%; DGC 0.1->1/5%% "
      "drops 6.7%%/11.3%%\n");
  return 0;
}
