// Figure 9: GPU utilization over time, non-compression Ring vs the
// best-performing HiPress configuration, for Bert-large and UGATIT on 128
// GPUs. We render the node-0 device's DNN-compute utilization in fixed
// windows over the measured iteration: Ring shows deep idle valleys during
// gradient transmission; HiPress keeps the device busy.
#include <algorithm>
#include <string>
#include <vector>

#include "bench/bench_util.h"

using namespace hipress;
using namespace hipress::bench;

namespace {

void UtilizationRow(const char* label, const char* model, const char* system,
                    const char* algorithm) {
  HiPressOptions options;
  options.model = model;
  options.system = system;
  options.algorithm = algorithm;
  options.cluster = ClusterSpec::Ec2(16);
  options.train.record_timeline = true;
  options.train.iterations = 3;  // show repeated compute/sync cycles
  auto result = RunTrainingSimulation(options);
  if (!result.ok()) {
    std::fprintf(stderr, "fig9 run failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  const TrainReport& report = result->report;

  // 40 windows spanning two iterations ending at the measured one.
  const SimTime span = 2 * report.iteration_time;
  const SimTime start = std::max<SimTime>(
      0, report.timeline_origin + report.iteration_time - span);
  const int windows = 40;
  const SimTime window = span / windows;

  std::printf("%-44s |", label);
  std::string bar;
  double mean = 0.0;
  for (int w = 0; w < windows; ++w) {
    const SimTime lo = start + w * window;
    const SimTime hi = lo + window;
    SimTime busy = 0;
    for (const GpuInterval& interval : report.timeline) {
      if (interval.kind != GpuTaskKind::kCompute) {
        continue;
      }
      const SimTime clipped_lo = std::max(interval.start, lo);
      const SimTime clipped_hi = std::min(interval.end, hi);
      if (clipped_hi > clipped_lo) {
        busy += clipped_hi - clipped_lo;
      }
    }
    const double utilization =
        static_cast<double>(busy) / static_cast<double>(window);
    mean += utilization;
    const char* glyphs = " .:-=+*#%@";
    bar += glyphs[std::min(9, static_cast<int>(utilization * 10.0))];
  }
  mean /= windows;
  std::printf("%s| mean %.0f%%\n", bar.c_str(), mean * 100.0);
}

}  // namespace

int main() {
  Header("Figure 9: GPU compute utilization over time (node 0, 16 nodes)");
  std::printf("each column is one time window; darker = busier\n\n");
  UtilizationRow("Bert-large  Ring (no compression)", "bert-large", "ring",
                 "onebit");
  UtilizationRow("Bert-large  HiPress-CaSync-PS(onebit)", "bert-large",
                 "hipress-ps", "onebit");
  std::printf("\n");
  UtilizationRow("UGATIT      Ring (no compression)", "ugatit", "ring",
                 "terngrad");
  UtilizationRow("UGATIT      HiPress-CaSync-PS(TernGrad)", "ugatit",
                 "hipress-ps", "terngrad");
  std::printf(
      "\npaper: both peak near 100%%; Ring's usage is sparse (idle during\n"
      "gradient transmission) while HiPress keeps the GPU doing useful "
      "work\n");
  return 0;
}
