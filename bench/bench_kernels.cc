// Section 4.4 microbenchmarks: encode/decode speed of the optimized
// (CompLL-grade) codecs vs their naive OSS counterparts, on real data.
// google-benchmark binary; also exercises gradient sizes 1-64 MB.
//
// The paper's contrasts to look for in the output:
//   * optimized TBQ encode ~an order of magnitude above OSS-TBQ,
//   * optimized DGC several times above OSS-DGC's full-sort encode,
//   * decode generally faster than encode.
#include <benchmark/benchmark.h>

#include <vector>

#include "src/common/rng.h"
#include "src/compress/registry.h"
#include "src/tensor/tensor.h"

namespace hipress {
namespace {

Tensor MakeGradient(size_t bytes) {
  Rng rng(bytes);
  Tensor tensor("g", bytes / sizeof(float));
  tensor.FillGaussian(rng);
  return tensor;
}

void BM_Encode(benchmark::State& state, const std::string& algorithm) {
  CompressorParams params;
  params.sparsity_ratio = 0.001;
  auto codec = CreateCompressor(algorithm, params);
  if (!codec.ok()) {
    state.SkipWithError("codec creation failed");
    return;
  }
  const size_t bytes = static_cast<size_t>(state.range(0));
  const Tensor gradient = MakeGradient(bytes);
  ByteBuffer encoded;
  for (auto _ : state) {
    const Status status = (*codec)->Encode(gradient.span(), &encoded);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(encoded.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * bytes);
}

void BM_Decode(benchmark::State& state, const std::string& algorithm) {
  CompressorParams params;
  params.sparsity_ratio = 0.001;
  auto codec = CreateCompressor(algorithm, params);
  if (!codec.ok()) {
    state.SkipWithError("codec creation failed");
    return;
  }
  const size_t bytes = static_cast<size_t>(state.range(0));
  const Tensor gradient = MakeGradient(bytes);
  ByteBuffer encoded;
  if (!(*codec)->Encode(gradient.span(), &encoded).ok()) {
    state.SkipWithError("encode failed");
    return;
  }
  std::vector<float> decoded(gradient.size());
  for (auto _ : state) {
    const Status status = (*codec)->Decode(encoded, decoded);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * bytes);
}

constexpr int64_t kSmall = 1 << 20;   // 1 MB
constexpr int64_t kLarge = 64 << 20;  // 64 MB

#define HIPRESS_CODEC_BENCH(name)                                      \
  BENCHMARK_CAPTURE(BM_Encode, name, #name)                            \
      ->Arg(kSmall)                                                    \
      ->Arg(kLarge)                                                    \
      ->MinTime(0.05)                                                  \
      ->Unit(benchmark::kMillisecond);                                 \
  BENCHMARK_CAPTURE(BM_Decode, name, #name)                            \
      ->Arg(kSmall)                                                    \
      ->Arg(kLarge)                                                    \
      ->MinTime(0.05)                                                  \
      ->Unit(benchmark::kMillisecond)

HIPRESS_CODEC_BENCH(onebit);
HIPRESS_CODEC_BENCH(tbq);
HIPRESS_CODEC_BENCH(terngrad);
HIPRESS_CODEC_BENCH(dgc);
HIPRESS_CODEC_BENCH(graddrop);

// OSS counterparts (encode only at 1 MB plus one large point for the
// headline contrasts; the naive DGC sort at 64 MB is intentionally slow).
BENCHMARK_CAPTURE(BM_Encode, oss_onebit, "oss-onebit")
    ->Arg(kSmall)
    ->Arg(kLarge)
    ->MinTime(0.05)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Encode, oss_tbq, "oss-tbq")
    ->Arg(kSmall)
    ->Arg(kLarge)
    ->MinTime(0.05)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Encode, oss_terngrad, "oss-terngrad")
    ->Arg(kSmall)
    ->Arg(kLarge)
    ->MinTime(0.05)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Encode, oss_dgc, "oss-dgc")
    ->Arg(kSmall)
    ->Arg(8 << 20)
    ->MinTime(0.05)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hipress

BENCHMARK_MAIN();
