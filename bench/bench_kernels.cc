// Section 4.4 microbenchmarks: encode/decode speed of the optimized
// (CompLL-grade) codecs vs their naive OSS counterparts, on real data.
// google-benchmark binary; also exercises gradient sizes 1-64 MB.
//
// The paper's contrasts to look for in the output:
//   * optimized TBQ encode ~an order of magnitude above OSS-TBQ,
//   * optimized DGC several times above OSS-DGC's full-sort encode,
//   * decode generally faster than encode.
//
// Before the google-benchmark run, every codec goes through a bit-exact
// round-trip check (encode/decode reproducible across independent codec
// instances) and a quick throughput measurement recorded into
// BENCH_kernels.json via the metrics registry.
// `--smoke` (or HIPRESS_BENCH_SMOKE=1) keeps only that phase on a reduced
// size set — the CI bench-smoke job — and the process exits non-zero if
// any round-trip check fails.
#include <benchmark/benchmark.h>
#include <dlfcn.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/bitops.h"
#include "src/common/buffer_pool.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/common/simd.h"
#include "src/compll/builtin_algorithms.h"
#include "src/compll/codegen.h"
#include "src/compress/registry.h"
#include "src/compress/simd_kernels.h"
#include "src/tensor/tensor.h"

// Hand-written intrinsics references for the generated-vs-hand-tuned panel
// (same gate as src/compress/simd_kernels.cc).
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(HIPRESS_FORCE_SCALAR)
#define BENCH_SIMD_X86 1
#include <immintrin.h>
#else
#define BENCH_SIMD_X86 0
#endif

namespace hipress {
namespace {

Tensor MakeGradient(size_t bytes) {
  Rng rng(bytes);
  Tensor tensor("g", bytes / sizeof(float));
  tensor.FillGaussian(rng);
  return tensor;
}

void BM_Encode(benchmark::State& state, const std::string& algorithm) {
  CompressorParams params;
  params.sparsity_ratio = 0.001;
  auto codec = CreateCompressor(algorithm, params);
  if (!codec.ok()) {
    state.SkipWithError("codec creation failed");
    return;
  }
  const size_t bytes = static_cast<size_t>(state.range(0));
  const Tensor gradient = MakeGradient(bytes);
  ByteBuffer encoded;
  for (auto _ : state) {
    const Status status = (*codec)->Encode(gradient.span(), &encoded);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(encoded.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * bytes);
}

void BM_Decode(benchmark::State& state, const std::string& algorithm) {
  CompressorParams params;
  params.sparsity_ratio = 0.001;
  auto codec = CreateCompressor(algorithm, params);
  if (!codec.ok()) {
    state.SkipWithError("codec creation failed");
    return;
  }
  const size_t bytes = static_cast<size_t>(state.range(0));
  const Tensor gradient = MakeGradient(bytes);
  ByteBuffer encoded;
  if (!(*codec)->Encode(gradient.span(), &encoded).ok()) {
    state.SkipWithError("encode failed");
    return;
  }
  std::vector<float> decoded(gradient.size());
  for (auto _ : state) {
    const Status status = (*codec)->Decode(encoded, decoded);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * bytes);
}

constexpr int64_t kSmall = 1 << 20;   // 1 MB
constexpr int64_t kLarge = 64 << 20;  // 64 MB

#define HIPRESS_CODEC_BENCH(name)                                      \
  BENCHMARK_CAPTURE(BM_Encode, name, #name)                            \
      ->Arg(kSmall)                                                    \
      ->Arg(kLarge)                                                    \
      ->MinTime(0.05)                                                  \
      ->Unit(benchmark::kMillisecond);                                 \
  BENCHMARK_CAPTURE(BM_Decode, name, #name)                            \
      ->Arg(kSmall)                                                    \
      ->Arg(kLarge)                                                    \
      ->MinTime(0.05)                                                  \
      ->Unit(benchmark::kMillisecond)

HIPRESS_CODEC_BENCH(onebit);
HIPRESS_CODEC_BENCH(fp16);
HIPRESS_CODEC_BENCH(tbq);
HIPRESS_CODEC_BENCH(terngrad);
HIPRESS_CODEC_BENCH(dgc);
HIPRESS_CODEC_BENCH(graddrop);

// OSS counterparts (encode only at 1 MB plus one large point for the
// headline contrasts; the naive DGC sort at 64 MB is intentionally slow).
BENCHMARK_CAPTURE(BM_Encode, oss_onebit, "oss-onebit")
    ->Arg(kSmall)
    ->Arg(kLarge)
    ->MinTime(0.05)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Encode, oss_tbq, "oss-tbq")
    ->Arg(kSmall)
    ->Arg(kLarge)
    ->MinTime(0.05)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Encode, oss_terngrad, "oss-terngrad")
    ->Arg(kSmall)
    ->Arg(kLarge)
    ->MinTime(0.05)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Encode, oss_dgc, "oss-dgc")
    ->Arg(kSmall)
    ->Arg(8 << 20)
    ->MinTime(0.05)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Round-trip verification + BENCH_kernels.json
// ---------------------------------------------------------------------------

const char* const kAllCodecs[] = {
    "onebit",     "tbq",     "fp16",         "terngrad", "dgc",
    "graddrop",   "oss-onebit", "oss-tbq",   "oss-terngrad", "oss-dgc",
};

bool BuffersEqual(const ByteBuffer& a, const ByteBuffer& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

bool FloatsBitEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

// Bit-exact round-trip: two independently constructed codec instances must
// produce identical encoded bytes and identical decoded bits for the same
// gradient. Any drift here means nondeterminism or a decode regression.
// (Encode-of-decode idempotence deliberately isn't checked: quantizers
// derive thresholds from the data, so re-quantizing a reconstruction is
// legitimately different.)
bool CheckRoundTrip(const std::string& algorithm, size_t bytes,
                    MetricsRegistry* registry) {
  CompressorParams params;
  params.sparsity_ratio = 0.001;
  auto codec_a = CreateCompressor(algorithm, params);
  auto codec_b = CreateCompressor(algorithm, params);
  registry->counter("roundtrip.checks").Increment();
  auto fail = [&](const char* what) {
    registry->counter("roundtrip.failures").Increment();
    std::fprintf(stderr, "ROUNDTRIP FAIL %s @%zuB: %s\n", algorithm.c_str(),
                 bytes, what);
    return false;
  };
  if (!codec_a.ok() || !codec_b.ok()) {
    return fail("codec creation failed");
  }
  const Tensor gradient = MakeGradient(bytes);
  ByteBuffer encoded_a;
  ByteBuffer encoded_b;
  if (!(*codec_a)->Encode(gradient.span(), &encoded_a).ok() ||
      !(*codec_b)->Encode(gradient.span(), &encoded_b).ok()) {
    return fail("encode failed");
  }
  if (!BuffersEqual(encoded_a, encoded_b)) {
    return fail("encode not deterministic across instances");
  }
  std::vector<float> decoded_a(gradient.size());
  std::vector<float> decoded_b(gradient.size());
  if (!(*codec_a)->Decode(encoded_a, decoded_a).ok() ||
      !(*codec_b)->Decode(encoded_b, decoded_b).ok()) {
    return fail("decode failed");
  }
  if (!FloatsBitEqual(decoded_a, decoded_b)) {
    return fail("decode not bit-exact across instances");
  }
  return true;
}

// Quick single-threaded throughput measurement for the JSON trajectory
// (the google-benchmark phase remains the precise instrument).
void MeasureThroughput(const std::string& algorithm, size_t bytes,
                       const std::string& size_label,
                       MetricsRegistry* registry) {
  CompressorParams params;
  params.sparsity_ratio = 0.001;
  auto codec = CreateCompressor(algorithm, params);
  if (!codec.ok()) {
    return;
  }
  const Tensor gradient = MakeGradient(bytes);
  ByteBuffer encoded;
  std::vector<float> decoded(gradient.size());
  using Clock = std::chrono::steady_clock;
  const auto mbps = [&](Clock::time_point since, int iterations) {
    const double seconds =
        std::chrono::duration<double>(Clock::now() - since).count();
    return seconds <= 0.0 ? 0.0
                          : static_cast<double>(bytes) * iterations /
                                (1024.0 * 1024.0) / seconds;
  };
  constexpr int kIterations = 3;
  const auto encode_start = Clock::now();
  for (int i = 0; i < kIterations; ++i) {
    if (!(*codec)->Encode(gradient.span(), &encoded).ok()) {
      return;
    }
  }
  const double encode_mbps = mbps(encode_start, kIterations);
  const auto decode_start = Clock::now();
  for (int i = 0; i < kIterations; ++i) {
    if (!(*codec)->Decode(encoded, decoded).ok()) {
      return;
    }
  }
  const std::string prefix = algorithm + "." + size_label;
  registry->gauge(prefix + ".encode_MBps").Set(encode_mbps);
  registry->gauge(prefix + ".decode_MBps").Set(mbps(decode_start, kIterations));
  registry->gauge(prefix + ".encoded_bytes")
      .Set(static_cast<double>(encoded.size()));
}

bool RunSimdPhase(MetricsRegistry* registry);  // defined below

// Runs the round-trip + throughput phase and writes BENCH_kernels.json
// (into $HIPRESS_BENCH_DIR when set). Returns false when a round-trip
// check failed.
bool RunVerificationPhase(bool smoke) {
  MetricsRegistry registry;
  registry.gauge("smoke").Set(smoke ? 1.0 : 0.0);
  struct SizePoint {
    size_t bytes;
    const char* label;
  };
  const std::vector<SizePoint> sizes =
      smoke ? std::vector<SizePoint>{{64 * 1024, "64KB"}, {1 << 20, "1MB"}}
            : std::vector<SizePoint>{{1 << 20, "1MB"}, {16 << 20, "16MB"}};
  bool all_ok = true;
  for (const char* algorithm : kAllCodecs) {
    for (const SizePoint& size : sizes) {
      // The naive OSS-DGC encode full-sorts; keep its large point small
      // enough that the check phase stays fast.
      if (std::string(algorithm) == "oss-dgc" && size.bytes > (8u << 20)) {
        continue;
      }
      all_ok &= CheckRoundTrip(algorithm, size.bytes, &registry);
      MeasureThroughput(algorithm, size.bytes, size.label, &registry);
    }
  }
  all_ok &= RunSimdPhase(&registry);
  const char* dir = std::getenv("HIPRESS_BENCH_DIR");
  const std::string path = (dir != nullptr ? std::string(dir) + "/" : "") +
                           "BENCH_kernels.json";
  const Status status = registry.WriteJson(path);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return false;
  }
  std::printf("roundtrip: %llu checks, %llu failures; wrote %s\n",
              static_cast<unsigned long long>(
                  registry.counter_value("roundtrip.checks")),
              static_cast<unsigned long long>(
                  registry.counter_value("roundtrip.failures")),
              path.c_str());
  return all_ok;
}

// Allocation-churn panel: per codec, one cold encode+decode (warm-up)
// followed by steady-state iterations, with the global BufferPool's
// hit/miss deltas recorded into BENCH_memory.json. The pooled-workspace
// invariant says the steady window performs zero pool misses — any codec
// still faulting fresh blocks after warm-up fails the phase (the CI
// bench-smoke gate).
bool RunMemoryPhase(bool smoke) {
  MetricsRegistry registry;
  registry.gauge("smoke").Set(smoke ? 1.0 : 0.0);
  const size_t bytes = smoke ? 256 * 1024 : (4u << 20);
  constexpr int kSteadyIterations = 5;
  registry.gauge("gradient_bytes").Set(static_cast<double>(bytes));
  registry.gauge("steady_iterations").Set(kSteadyIterations);
  BufferPool& pool = BufferPool::Global();
  bool all_ok = true;
  for (const char* algorithm : kAllCodecs) {
    CompressorParams params;
    params.sparsity_ratio = 0.001;
    auto codec = CreateCompressor(algorithm, params);
    if (!codec.ok()) {
      all_ok = false;
      continue;
    }
    const Tensor gradient = MakeGradient(bytes);
    ByteBuffer encoded;
    std::vector<float> decoded(gradient.size());
    const auto run_once = [&] {
      return (*codec)->Encode(gradient.span(), &encoded).ok() &&
             (*codec)->Decode(encoded, decoded).ok();
    };
    const BufferPool::Stats cold = pool.stats();
    if (!run_once()) {
      all_ok = false;
      continue;
    }
    const BufferPool::Stats warm = pool.stats();
    bool steady_ok = true;
    for (int i = 0; i < kSteadyIterations; ++i) {
      steady_ok &= run_once();
    }
    const BufferPool::Stats steady = pool.stats();
    if (!steady_ok) {
      all_ok = false;
      continue;
    }
    const uint64_t warm_misses = warm.misses - cold.misses;
    const uint64_t steady_misses = steady.misses - warm.misses;
    const uint64_t steady_hits = steady.hits - warm.hits;
    const std::string prefix(algorithm);
    registry.gauge(prefix + ".warmup_pool_misses")
        .Set(static_cast<double>(warm_misses));
    registry.gauge(prefix + ".steady_pool_misses")
        .Set(static_cast<double>(steady_misses));
    registry.gauge(prefix + ".steady_pool_hits")
        .Set(static_cast<double>(steady_hits));
    if (steady_misses > 0) {
      std::fprintf(stderr,
                   "MEMORY GATE FAIL %s: %llu pool misses across %d "
                   "steady-state iterations (expected 0)\n",
                   algorithm, static_cast<unsigned long long>(steady_misses),
                   kSteadyIterations);
      all_ok = false;
    }
  }
  registry.gauge("pool.peak_bytes")
      .Set(static_cast<double>(pool.stats().peak_bytes));
  const char* dir = std::getenv("HIPRESS_BENCH_DIR");
  const std::string path = (dir != nullptr ? std::string(dir) + "/" : "") +
                           "BENCH_memory.json";
  const Status status = registry.WriteJson(path);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return false;
  }
  std::printf("memory: steady-state pool misses %s; wrote %s\n",
              all_ok ? "zero for every codec" : "NONZERO (gate failed)",
              path.c_str());
  return all_ok;
}

// ---------------------------------------------------------------------------
// Scalar-vs-SIMD speedup panel (docs/KERNELS.md)
// ---------------------------------------------------------------------------
//
// Measures the hand-vectorized kernels (src/compress/simd_kernels.h) at the
// scalar tier and at the host's native tier, single-threaded and direct —
// no thread pool, so the ratio isolates vectorization from scheduling.
// Gates (process exits non-zero on failure):
//   * encoded bytes are bit-identical across tiers (FNV fingerprints), and
//   * on an AVX2-or-better host, encode speedup >= 3x for onebit/tbq/fp16.
// The panel also dlopens a CompLL-generated onebit unit and compares its
// vector reduce/map kernels against hand-written intrinsics references —
// the generated loops must stay within 10% of hand-tuned.

uint64_t Fnv64(const uint8_t* data, size_t n) {
  uint64_t hash = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    hash = (hash ^ data[i]) * 1099511628211ull;
  }
  return hash;
}

double Low32(uint64_t fingerprint) {
  return static_cast<double>(fingerprint & 0xffffffffull);
}

// Best-of-N wall time of fn() in seconds.
template <typename Fn>
double BestSeconds(Fn&& fn, int repeats) {
  using Clock = std::chrono::steady_clock;
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto start = Clock::now();
    fn();
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (seconds < best) {
      best = seconds;
    }
  }
  return best;
}

struct KernelMeasure {
  double encode_mbps = 0.0;
  double decode_mbps = 0.0;
  uint64_t encode_fingerprint = 0;
};

// One codec's raw kernel loops at the currently active tier. n is the
// element count; throughput is reported over the uncompressed bytes.
KernelMeasure MeasureKernels(const std::string& codec, const float* x,
                             size_t n, int repeats) {
  KernelMeasure m;
  const double bytes = static_cast<double>(n) * sizeof(float);
  const auto mbps = [bytes](double seconds) {
    return seconds <= 0.0 ? 0.0 : bytes / (1024.0 * 1024.0) / seconds;
  };
  if (codec == "onebit") {
    std::vector<uint8_t> packed(PackedBytes(n, 1));
    std::vector<float> decoded(n);
    m.encode_mbps = mbps(BestSeconds(
        [&] {
          // Both encode passes, like OnebitCompressor::EncodeInto.
          const simd::SignStats stats = simd::OnebitSignStats(x, n);
          benchmark::DoNotOptimize(stats.pos_sum);
          simd::OnebitPackSigns(x, n, packed.data(), packed.size());
          benchmark::DoNotOptimize(packed.data());
        },
        repeats));
    m.encode_fingerprint = Fnv64(packed.data(), packed.size());
    m.decode_mbps = mbps(BestSeconds(
        [&] {
          simd::OnebitUnpackSigns(packed.data(), n, -0.5f, 0.5f,
                                  decoded.data());
          benchmark::DoNotOptimize(decoded.data());
        },
        repeats));
  } else if (codec == "tbq") {
    std::vector<uint8_t> packed(PackedBytes(n, 2));
    std::vector<float> decoded(n);
    m.encode_mbps = mbps(BestSeconds(
        [&] {
          simd::TbqPackCodes(x, n, 0.5f, packed.data(), packed.size());
          benchmark::DoNotOptimize(packed.data());
        },
        repeats));
    m.encode_fingerprint = Fnv64(packed.data(), packed.size());
    m.decode_mbps = mbps(BestSeconds(
        [&] {
          simd::TbqUnpackCodes(packed.data(), n, 0.5f, decoded.data());
          benchmark::DoNotOptimize(decoded.data());
        },
        repeats));
  } else if (codec == "fp16") {
    std::vector<uint16_t> halves(n);
    std::vector<float> decoded(n);
    m.encode_mbps = mbps(BestSeconds(
        [&] {
          simd::Fp16Encode(x, n, halves.data(), halves.size());
          benchmark::DoNotOptimize(halves.data());
        },
        repeats));
    m.encode_fingerprint =
        Fnv64(reinterpret_cast<const uint8_t*>(halves.data()),
              halves.size() * sizeof(uint16_t));
    m.decode_mbps = mbps(BestSeconds(
        [&] {
          simd::Fp16Decode(halves.data(), n, decoded.data());
          benchmark::DoNotOptimize(decoded.data());
        },
        repeats));
  }
  return m;
}

// Full-codec encode fingerprint at the currently active tier (exercises the
// ParallelFor sharding on top of the kernels).
uint64_t CodecEncodeFingerprint(const std::string& codec,
                                const Tensor& gradient) {
  CompressorParams params;
  params.sparsity_ratio = 0.001;
  auto compressor = CreateCompressor(codec, params);
  if (!compressor.ok()) {
    return 0;
  }
  ByteBuffer encoded;
  if (!(*compressor)->Encode(gradient.span(), &encoded).ok()) {
    return 0;
  }
  return Fnv64(encoded.data(), encoded.size());
}

#if BENCH_SIMD_X86
// Hand-written references implementing the canonical schedules with raw
// intrinsics — the bar the generated kernels are measured against.
__attribute__((target("avx2,fma"))) double HandBlockSum8Avx2(const double* x,
                                                             size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  const size_t n8 = n & ~static_cast<size_t>(7);
  for (size_t i = 0; i < n8; i += 8) {
    acc_lo = _mm256_add_pd(acc_lo, _mm256_loadu_pd(x + i));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_loadu_pd(x + i + 4));
  }
  double lanes[8];
  _mm256_storeu_pd(lanes, acc_lo);
  _mm256_storeu_pd(lanes + 4, acc_hi);
  for (size_t j = 0; j < n - n8; ++j) {
    lanes[j] += x[n8 + j];
  }
  double r = 0.0;
  for (size_t j = 0; j < 8; ++j) {
    r += lanes[j];
  }
  return r;
}

__attribute__((target("avx512f,avx512bw,avx512vl"))) double
HandBlockSum8Avx512(const double* x, size_t n) {
  __m512d acc = _mm512_setzero_pd();
  const size_t n8 = n & ~static_cast<size_t>(7);
  for (size_t i = 0; i < n8; i += 8) {
    acc = _mm512_add_pd(acc, _mm512_loadu_pd(x + i));
  }
  double lanes[8];
  _mm512_storeu_pd(lanes, acc);
  for (size_t j = 0; j < n - n8; ++j) {
    lanes[j] += x[n8 + j];
  }
  double r = 0.0;
  for (size_t j = 0; j < 8; ++j) {
    r += lanes[j];
  }
  return r;
}

__attribute__((target("avx2"))) void HandMapSignBitAvx2(const double* in,
                                                        double* out,
                                                        size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const size_t n4 = n & ~static_cast<size_t>(3);
  for (size_t i = 0; i < n4; i += 4) {
    const __m256d ge = _mm256_cmp_pd(_mm256_loadu_pd(in + i), zero,
                                     _CMP_GE_OQ);
    _mm256_storeu_pd(out + i, _mm256_and_pd(ge, one));
  }
  for (size_t i = n4; i < n; ++i) {
    out[i] = in[i] >= 0.0 ? 1.0 : 0.0;
  }
}

__attribute__((target("avx512f,avx512bw,avx512vl"))) void
HandMapSignBitAvx512(const double* in, double* out, size_t n) {
  const __m512d zero = _mm512_setzero_pd();
  const __m512d one = _mm512_set1_pd(1.0);
  const size_t n8 = n & ~static_cast<size_t>(7);
  for (size_t i = 0; i < n8; i += 8) {
    const __mmask8 ge =
        _mm512_cmp_pd_mask(_mm512_loadu_pd(in + i), zero, _CMP_GE_OQ);
    _mm512_storeu_pd(out + i,
                     _mm512_maskz_mov_pd(ge, one));
  }
  for (size_t i = n8; i < n; ++i) {
    out[i] = in[i] >= 0.0 ? 1.0 : 0.0;
  }
}
#endif  // BENCH_SIMD_X86

double HandBlockSum8Scalar(const double* x, size_t n) {
  double lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  const size_t n8 = n & ~static_cast<size_t>(7);
  for (size_t i = 0; i < n8; i += 8) {
    for (size_t j = 0; j < 8; ++j) {
      lanes[j] += x[i + j];
    }
  }
  for (size_t j = 0; j < n - n8; ++j) {
    lanes[j] += x[n8 + j];
  }
  double r = 0.0;
  for (size_t j = 0; j < 8; ++j) {
    r += lanes[j];
  }
  return r;
}

double HandReduceSum(const double* x, size_t n) {
  constexpr size_t kBlock = 4096;
  double total = 0.0;
  for (size_t base = 0; base < n; base += kBlock) {
    const size_t len = n - base < kBlock ? n - base : kBlock;
#if BENCH_SIMD_X86
    const SimdTier tier = ActiveSimdTier();
    if (tier >= SimdTier::kAvx512) {
      total += HandBlockSum8Avx512(x + base, len);
      continue;
    }
    if (tier >= SimdTier::kAvx2) {
      total += HandBlockSum8Avx2(x + base, len);
      continue;
    }
#endif
    total += HandBlockSum8Scalar(x + base, len);
  }
  return total;
}

void HandMapSignBit(const double* in, double* out, size_t n) {
#if BENCH_SIMD_X86
  const SimdTier tier = ActiveSimdTier();
  if (tier >= SimdTier::kAvx512) {
    HandMapSignBitAvx512(in, out, n);
    return;
  }
  if (tier >= SimdTier::kAvx2) {
    HandMapSignBitAvx2(in, out, n);
    return;
  }
#endif
  for (size_t i = 0; i < n; ++i) {
    out[i] = in[i] >= 0.0 ? 1.0 : 0.0;
  }
}

using GenReduceFn = double (*)(const double*, size_t);
using GenMapFn = void (*)(const double*, double*, size_t);

// Generated-vs-hand-tuned comparison: compile the CompLL onebit unit,
// dlopen its raw kernel hooks, and race the generated vector loops against
// the intrinsics references above on identical inputs.
bool RunGeneratedPanel(MetricsRegistry* registry) {
  const compll::DslAlgorithm* entry = compll::FindDslAlgorithm("onebit");
  if (entry == nullptr) {
    registry->gauge("simd.generated.available").Set(0.0);
    return true;
  }
  compll::CodegenOptions options;
  options.algorithm_name = "onebit";
  auto generated = compll::GenerateCppFromSource(entry->source, options);
  if (!generated.ok()) {
    std::fprintf(stderr, "SIMD PANEL: codegen failed: %s\n",
                 generated.status().ToString().c_str());
    return false;
  }
  const std::string base = "/tmp/bench_compll_onebit";
  {
    std::ofstream out(base + ".cc");
    out << *generated;
  }
  const std::string command = "c++ -std=c++20 -O3 -shared -fPIC -o " + base +
                              ".so " + base + ".cc 2>/dev/null";
  if (std::system(command.c_str()) != 0) {
    registry->gauge("simd.generated.available").Set(0.0);
    std::fprintf(stderr,
                 "SIMD PANEL: host compiler unavailable; generated-vs-hand "
                 "comparison skipped\n");
    return true;
  }
  void* handle = dlopen((base + ".so").c_str(), RTLD_NOW);
  auto* gen_reduce = handle == nullptr
                         ? nullptr
                         : reinterpret_cast<GenReduceFn>(
                               dlsym(handle, "onebit_reduce_sum_c"));
  auto* gen_map = handle == nullptr
                      ? nullptr
                      : reinterpret_cast<GenMapFn>(
                            dlsym(handle, "onebit_map_signBit_c"));
  if (gen_reduce == nullptr || gen_map == nullptr) {
    registry->gauge("simd.generated.available").Set(0.0);
    std::fprintf(stderr, "SIMD PANEL: kernel hooks missing from .so\n");
    return false;
  }
  registry->gauge("simd.generated.available").Set(1.0);

  constexpr size_t kElements = 1 << 20;
  Rng rng(4242);
  std::vector<double> input(kElements);
  for (double& v : input) {
    v = rng.NextGaussian();
  }
  std::vector<double> gen_out(kElements);
  std::vector<double> hand_out(kElements);
  const double bytes = static_cast<double>(kElements) * sizeof(double);
  const auto mbps = [bytes](double seconds) {
    return seconds <= 0.0 ? 0.0 : bytes / (1024.0 * 1024.0) / seconds;
  };
  constexpr int kRepeats = 7;

  // Warm both paths (first generated call pays tier detection).
  volatile double sink = gen_reduce(input.data(), input.size()) +
                         HandReduceSum(input.data(), input.size());
  (void)sink;

  const double gen_reduce_mbps = mbps(BestSeconds(
      [&] {
        benchmark::DoNotOptimize(gen_reduce(input.data(), input.size()));
      },
      kRepeats));
  const double hand_reduce_mbps = mbps(BestSeconds(
      [&] {
        benchmark::DoNotOptimize(HandReduceSum(input.data(), input.size()));
      },
      kRepeats));
  const double gen_map_mbps = mbps(BestSeconds(
      [&] {
        gen_map(input.data(), gen_out.data(), input.size());
        benchmark::DoNotOptimize(gen_out.data());
      },
      kRepeats));
  const double hand_map_mbps = mbps(BestSeconds(
      [&] {
        HandMapSignBit(input.data(), hand_out.data(), input.size());
        benchmark::DoNotOptimize(hand_out.data());
      },
      kRepeats));

  // Bit-level agreement: both implement the same canonical schedules.
  const double gen_sum = gen_reduce(input.data(), input.size());
  const double hand_sum = HandReduceSum(input.data(), input.size());
  const bool sums_match = std::memcmp(&gen_sum, &hand_sum, sizeof(double)) == 0;
  gen_map(input.data(), gen_out.data(), input.size());
  HandMapSignBit(input.data(), hand_out.data(), input.size());
  const bool maps_match =
      std::memcmp(gen_out.data(), hand_out.data(),
                  kElements * sizeof(double)) == 0;

  const double reduce_ratio =
      hand_reduce_mbps <= 0.0 ? 0.0 : gen_reduce_mbps / hand_reduce_mbps;
  const double map_ratio =
      hand_map_mbps <= 0.0 ? 0.0 : gen_map_mbps / hand_map_mbps;
  registry->gauge("simd.generated.reduce_MBps").Set(gen_reduce_mbps);
  registry->gauge("simd.generated.reduce_hand_MBps").Set(hand_reduce_mbps);
  registry->gauge("simd.generated.reduce_ratio").Set(reduce_ratio);
  registry->gauge("simd.generated.map_MBps").Set(gen_map_mbps);
  registry->gauge("simd.generated.map_hand_MBps").Set(hand_map_mbps);
  registry->gauge("simd.generated.map_ratio").Set(map_ratio);
  registry->gauge("simd.generated.reduce_bits_match")
      .Set(sums_match ? 1.0 : 0.0);
  registry->gauge("simd.generated.map_bits_match")
      .Set(maps_match ? 1.0 : 0.0);
  std::printf(
      "simd generated-vs-hand: reduce %.0f vs %.0f MB/s (%.2fx), map %.0f "
      "vs %.0f MB/s (%.2fx)\n",
      gen_reduce_mbps, hand_reduce_mbps, reduce_ratio, gen_map_mbps,
      hand_map_mbps, map_ratio);

  bool ok = true;
  if (!sums_match || !maps_match) {
    std::fprintf(stderr,
                 "SIMD GATE FAIL: generated kernels disagree with the hand "
                 "references (reduce %d, map %d)\n",
                 sums_match ? 1 : 0, maps_match ? 1 : 0);
    ok = false;
  }
  // Within 10% of hand-tuned, gated only where the vector tiers actually
  // run (the scalar-vs-scalar comparison is gated the same way — both sides
  // collapse to the same loop).
  if (SimdCompiledIn() && SimdHostTier() >= SimdTier::kAvx2) {
    if (reduce_ratio < 0.9 || map_ratio < 0.9) {
      std::fprintf(stderr,
                   "SIMD GATE FAIL: generated kernels below 0.9x hand-tuned "
                   "(reduce %.2f, map %.2f)\n",
                   reduce_ratio, map_ratio);
      ok = false;
    }
  }
  dlclose(handle);
  std::remove((base + ".cc").c_str());
  std::remove((base + ".so").c_str());
  return ok;
}

// Runs the scalar-vs-SIMD panel and appends its gauges to the registry the
// verification phase already populated. Returns false on gate failure.
bool RunSimdPhase(MetricsRegistry* registry) {
  registry->gauge("simd.compiled_in").Set(SimdCompiledIn() ? 1.0 : 0.0);
  registry->gauge("simd.host_tier")
      .Set(static_cast<double>(SimdHostTier()));
  registry->gauge("simd.active_tier")
      .Set(static_cast<double>(ActiveSimdTier()));

  constexpr size_t kElements = 1 << 20;  // 4 MB of floats
  constexpr int kRepeats = 5;
  Rng rng(77);
  Tensor gradient("g", kElements);
  gradient.FillGaussian(rng);

  bool all_ok = true;
  for (const char* codec : {"onebit", "tbq", "fp16"}) {
    SimdTierOverride(SimdTier::kScalar);
    const KernelMeasure scalar =
        MeasureKernels(codec, gradient.data(), kElements, kRepeats);
    const uint64_t scalar_codec_fp = CodecEncodeFingerprint(codec, gradient);
    ClearSimdTierOverride();
    const KernelMeasure vec =
        MeasureKernels(codec, gradient.data(), kElements, kRepeats);
    const uint64_t vec_codec_fp = CodecEncodeFingerprint(codec, gradient);

    const double encode_speedup =
        scalar.encode_mbps <= 0.0 ? 0.0 : vec.encode_mbps / scalar.encode_mbps;
    const double decode_speedup =
        scalar.decode_mbps <= 0.0 ? 0.0 : vec.decode_mbps / scalar.decode_mbps;
    const bool kernels_match =
        scalar.encode_fingerprint == vec.encode_fingerprint;
    const bool codecs_match =
        scalar_codec_fp == vec_codec_fp && scalar_codec_fp != 0;
    const std::string prefix = std::string("simd.") + codec;
    registry->gauge(prefix + ".scalar_encode_MBps").Set(scalar.encode_mbps);
    registry->gauge(prefix + ".vector_encode_MBps").Set(vec.encode_mbps);
    registry->gauge(prefix + ".encode_speedup").Set(encode_speedup);
    registry->gauge(prefix + ".scalar_decode_MBps").Set(scalar.decode_mbps);
    registry->gauge(prefix + ".vector_decode_MBps").Set(vec.decode_mbps);
    registry->gauge(prefix + ".decode_speedup").Set(decode_speedup);
    registry->gauge(prefix + ".kernel_fingerprint_low32")
        .Set(Low32(vec.encode_fingerprint));
    registry->gauge(prefix + ".codec_fingerprint_low32")
        .Set(Low32(vec_codec_fp));
    registry->gauge(prefix + ".tiers_bit_identical")
        .Set(kernels_match && codecs_match ? 1.0 : 0.0);
    std::printf(
        "simd %-6s encode %7.0f -> %7.0f MB/s (%.2fx)  decode %7.0f -> "
        "%7.0f MB/s (%.2fx)%s\n",
        codec, scalar.encode_mbps, vec.encode_mbps, encode_speedup,
        scalar.decode_mbps, vec.decode_mbps, decode_speedup,
        kernels_match && codecs_match ? "" : "  FINGERPRINT MISMATCH");

    if (!kernels_match || !codecs_match) {
      std::fprintf(stderr,
                   "SIMD GATE FAIL %s: scalar and vector tiers are not "
                   "bit-identical\n",
                   codec);
      all_ok = false;
    }
    if (SimdCompiledIn() && SimdHostTier() >= SimdTier::kAvx2 &&
        encode_speedup < 3.0) {
      std::fprintf(stderr,
                   "SIMD GATE FAIL %s: encode speedup %.2fx below the 3x "
                   "bar on an AVX2+ host\n",
                   codec, encode_speedup);
      all_ok = false;
    }
  }
  all_ok &= RunGeneratedPanel(registry);
  return all_ok;
}

}  // namespace
}  // namespace hipress

int main(int argc, char** argv) {
  bool smoke = std::getenv("HIPRESS_BENCH_SMOKE") != nullptr;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!hipress::RunVerificationPhase(smoke)) {
    return 1;
  }
  if (!hipress::RunMemoryPhase(smoke)) {
    return 1;
  }
  if (smoke) {
    return 0;  // CI smoke: skip the full google-benchmark sweep
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
