// Section 4.4 microbenchmarks: encode/decode speed of the optimized
// (CompLL-grade) codecs vs their naive OSS counterparts, on real data.
// google-benchmark binary; also exercises gradient sizes 1-64 MB.
//
// The paper's contrasts to look for in the output:
//   * optimized TBQ encode ~an order of magnitude above OSS-TBQ,
//   * optimized DGC several times above OSS-DGC's full-sort encode,
//   * decode generally faster than encode.
//
// Before the google-benchmark run, every codec goes through a bit-exact
// round-trip check (encode/decode reproducible across independent codec
// instances) and a quick throughput measurement recorded into
// BENCH_kernels.json via the metrics registry.
// `--smoke` (or HIPRESS_BENCH_SMOKE=1) keeps only that phase on a reduced
// size set — the CI bench-smoke job — and the process exits non-zero if
// any round-trip check fails.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/buffer_pool.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/compress/registry.h"
#include "src/tensor/tensor.h"

namespace hipress {
namespace {

Tensor MakeGradient(size_t bytes) {
  Rng rng(bytes);
  Tensor tensor("g", bytes / sizeof(float));
  tensor.FillGaussian(rng);
  return tensor;
}

void BM_Encode(benchmark::State& state, const std::string& algorithm) {
  CompressorParams params;
  params.sparsity_ratio = 0.001;
  auto codec = CreateCompressor(algorithm, params);
  if (!codec.ok()) {
    state.SkipWithError("codec creation failed");
    return;
  }
  const size_t bytes = static_cast<size_t>(state.range(0));
  const Tensor gradient = MakeGradient(bytes);
  ByteBuffer encoded;
  for (auto _ : state) {
    const Status status = (*codec)->Encode(gradient.span(), &encoded);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(encoded.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * bytes);
}

void BM_Decode(benchmark::State& state, const std::string& algorithm) {
  CompressorParams params;
  params.sparsity_ratio = 0.001;
  auto codec = CreateCompressor(algorithm, params);
  if (!codec.ok()) {
    state.SkipWithError("codec creation failed");
    return;
  }
  const size_t bytes = static_cast<size_t>(state.range(0));
  const Tensor gradient = MakeGradient(bytes);
  ByteBuffer encoded;
  if (!(*codec)->Encode(gradient.span(), &encoded).ok()) {
    state.SkipWithError("encode failed");
    return;
  }
  std::vector<float> decoded(gradient.size());
  for (auto _ : state) {
    const Status status = (*codec)->Decode(encoded, decoded);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * bytes);
}

constexpr int64_t kSmall = 1 << 20;   // 1 MB
constexpr int64_t kLarge = 64 << 20;  // 64 MB

#define HIPRESS_CODEC_BENCH(name)                                      \
  BENCHMARK_CAPTURE(BM_Encode, name, #name)                            \
      ->Arg(kSmall)                                                    \
      ->Arg(kLarge)                                                    \
      ->MinTime(0.05)                                                  \
      ->Unit(benchmark::kMillisecond);                                 \
  BENCHMARK_CAPTURE(BM_Decode, name, #name)                            \
      ->Arg(kSmall)                                                    \
      ->Arg(kLarge)                                                    \
      ->MinTime(0.05)                                                  \
      ->Unit(benchmark::kMillisecond)

HIPRESS_CODEC_BENCH(onebit);
HIPRESS_CODEC_BENCH(tbq);
HIPRESS_CODEC_BENCH(terngrad);
HIPRESS_CODEC_BENCH(dgc);
HIPRESS_CODEC_BENCH(graddrop);

// OSS counterparts (encode only at 1 MB plus one large point for the
// headline contrasts; the naive DGC sort at 64 MB is intentionally slow).
BENCHMARK_CAPTURE(BM_Encode, oss_onebit, "oss-onebit")
    ->Arg(kSmall)
    ->Arg(kLarge)
    ->MinTime(0.05)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Encode, oss_tbq, "oss-tbq")
    ->Arg(kSmall)
    ->Arg(kLarge)
    ->MinTime(0.05)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Encode, oss_terngrad, "oss-terngrad")
    ->Arg(kSmall)
    ->Arg(kLarge)
    ->MinTime(0.05)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Encode, oss_dgc, "oss-dgc")
    ->Arg(kSmall)
    ->Arg(8 << 20)
    ->MinTime(0.05)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Round-trip verification + BENCH_kernels.json
// ---------------------------------------------------------------------------

const char* const kAllCodecs[] = {
    "onebit",     "tbq",     "terngrad",     "dgc",     "graddrop",
    "oss-onebit", "oss-tbq", "oss-terngrad", "oss-dgc",
};

bool BuffersEqual(const ByteBuffer& a, const ByteBuffer& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

bool FloatsBitEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

// Bit-exact round-trip: two independently constructed codec instances must
// produce identical encoded bytes and identical decoded bits for the same
// gradient. Any drift here means nondeterminism or a decode regression.
// (Encode-of-decode idempotence deliberately isn't checked: quantizers
// derive thresholds from the data, so re-quantizing a reconstruction is
// legitimately different.)
bool CheckRoundTrip(const std::string& algorithm, size_t bytes,
                    MetricsRegistry* registry) {
  CompressorParams params;
  params.sparsity_ratio = 0.001;
  auto codec_a = CreateCompressor(algorithm, params);
  auto codec_b = CreateCompressor(algorithm, params);
  registry->counter("roundtrip.checks").Increment();
  auto fail = [&](const char* what) {
    registry->counter("roundtrip.failures").Increment();
    std::fprintf(stderr, "ROUNDTRIP FAIL %s @%zuB: %s\n", algorithm.c_str(),
                 bytes, what);
    return false;
  };
  if (!codec_a.ok() || !codec_b.ok()) {
    return fail("codec creation failed");
  }
  const Tensor gradient = MakeGradient(bytes);
  ByteBuffer encoded_a;
  ByteBuffer encoded_b;
  if (!(*codec_a)->Encode(gradient.span(), &encoded_a).ok() ||
      !(*codec_b)->Encode(gradient.span(), &encoded_b).ok()) {
    return fail("encode failed");
  }
  if (!BuffersEqual(encoded_a, encoded_b)) {
    return fail("encode not deterministic across instances");
  }
  std::vector<float> decoded_a(gradient.size());
  std::vector<float> decoded_b(gradient.size());
  if (!(*codec_a)->Decode(encoded_a, decoded_a).ok() ||
      !(*codec_b)->Decode(encoded_b, decoded_b).ok()) {
    return fail("decode failed");
  }
  if (!FloatsBitEqual(decoded_a, decoded_b)) {
    return fail("decode not bit-exact across instances");
  }
  return true;
}

// Quick single-threaded throughput measurement for the JSON trajectory
// (the google-benchmark phase remains the precise instrument).
void MeasureThroughput(const std::string& algorithm, size_t bytes,
                       const std::string& size_label,
                       MetricsRegistry* registry) {
  CompressorParams params;
  params.sparsity_ratio = 0.001;
  auto codec = CreateCompressor(algorithm, params);
  if (!codec.ok()) {
    return;
  }
  const Tensor gradient = MakeGradient(bytes);
  ByteBuffer encoded;
  std::vector<float> decoded(gradient.size());
  using Clock = std::chrono::steady_clock;
  const auto mbps = [&](Clock::time_point since, int iterations) {
    const double seconds =
        std::chrono::duration<double>(Clock::now() - since).count();
    return seconds <= 0.0 ? 0.0
                          : static_cast<double>(bytes) * iterations /
                                (1024.0 * 1024.0) / seconds;
  };
  constexpr int kIterations = 3;
  const auto encode_start = Clock::now();
  for (int i = 0; i < kIterations; ++i) {
    if (!(*codec)->Encode(gradient.span(), &encoded).ok()) {
      return;
    }
  }
  const double encode_mbps = mbps(encode_start, kIterations);
  const auto decode_start = Clock::now();
  for (int i = 0; i < kIterations; ++i) {
    if (!(*codec)->Decode(encoded, decoded).ok()) {
      return;
    }
  }
  const std::string prefix = algorithm + "." + size_label;
  registry->gauge(prefix + ".encode_MBps").Set(encode_mbps);
  registry->gauge(prefix + ".decode_MBps").Set(mbps(decode_start, kIterations));
  registry->gauge(prefix + ".encoded_bytes")
      .Set(static_cast<double>(encoded.size()));
}

// Runs the round-trip + throughput phase and writes BENCH_kernels.json
// (into $HIPRESS_BENCH_DIR when set). Returns false when a round-trip
// check failed.
bool RunVerificationPhase(bool smoke) {
  MetricsRegistry registry;
  registry.gauge("smoke").Set(smoke ? 1.0 : 0.0);
  struct SizePoint {
    size_t bytes;
    const char* label;
  };
  const std::vector<SizePoint> sizes =
      smoke ? std::vector<SizePoint>{{64 * 1024, "64KB"}, {1 << 20, "1MB"}}
            : std::vector<SizePoint>{{1 << 20, "1MB"}, {16 << 20, "16MB"}};
  bool all_ok = true;
  for (const char* algorithm : kAllCodecs) {
    for (const SizePoint& size : sizes) {
      // The naive OSS-DGC encode full-sorts; keep its large point small
      // enough that the check phase stays fast.
      if (std::string(algorithm) == "oss-dgc" && size.bytes > (8u << 20)) {
        continue;
      }
      all_ok &= CheckRoundTrip(algorithm, size.bytes, &registry);
      MeasureThroughput(algorithm, size.bytes, size.label, &registry);
    }
  }
  const char* dir = std::getenv("HIPRESS_BENCH_DIR");
  const std::string path = (dir != nullptr ? std::string(dir) + "/" : "") +
                           "BENCH_kernels.json";
  const Status status = registry.WriteJson(path);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return false;
  }
  std::printf("roundtrip: %llu checks, %llu failures; wrote %s\n",
              static_cast<unsigned long long>(
                  registry.counter_value("roundtrip.checks")),
              static_cast<unsigned long long>(
                  registry.counter_value("roundtrip.failures")),
              path.c_str());
  return all_ok;
}

// Allocation-churn panel: per codec, one cold encode+decode (warm-up)
// followed by steady-state iterations, with the global BufferPool's
// hit/miss deltas recorded into BENCH_memory.json. The pooled-workspace
// invariant says the steady window performs zero pool misses — any codec
// still faulting fresh blocks after warm-up fails the phase (the CI
// bench-smoke gate).
bool RunMemoryPhase(bool smoke) {
  MetricsRegistry registry;
  registry.gauge("smoke").Set(smoke ? 1.0 : 0.0);
  const size_t bytes = smoke ? 256 * 1024 : (4u << 20);
  constexpr int kSteadyIterations = 5;
  registry.gauge("gradient_bytes").Set(static_cast<double>(bytes));
  registry.gauge("steady_iterations").Set(kSteadyIterations);
  BufferPool& pool = BufferPool::Global();
  bool all_ok = true;
  for (const char* algorithm : kAllCodecs) {
    CompressorParams params;
    params.sparsity_ratio = 0.001;
    auto codec = CreateCompressor(algorithm, params);
    if (!codec.ok()) {
      all_ok = false;
      continue;
    }
    const Tensor gradient = MakeGradient(bytes);
    ByteBuffer encoded;
    std::vector<float> decoded(gradient.size());
    const auto run_once = [&] {
      return (*codec)->Encode(gradient.span(), &encoded).ok() &&
             (*codec)->Decode(encoded, decoded).ok();
    };
    const BufferPool::Stats cold = pool.stats();
    if (!run_once()) {
      all_ok = false;
      continue;
    }
    const BufferPool::Stats warm = pool.stats();
    bool steady_ok = true;
    for (int i = 0; i < kSteadyIterations; ++i) {
      steady_ok &= run_once();
    }
    const BufferPool::Stats steady = pool.stats();
    if (!steady_ok) {
      all_ok = false;
      continue;
    }
    const uint64_t warm_misses = warm.misses - cold.misses;
    const uint64_t steady_misses = steady.misses - warm.misses;
    const uint64_t steady_hits = steady.hits - warm.hits;
    const std::string prefix(algorithm);
    registry.gauge(prefix + ".warmup_pool_misses")
        .Set(static_cast<double>(warm_misses));
    registry.gauge(prefix + ".steady_pool_misses")
        .Set(static_cast<double>(steady_misses));
    registry.gauge(prefix + ".steady_pool_hits")
        .Set(static_cast<double>(steady_hits));
    if (steady_misses > 0) {
      std::fprintf(stderr,
                   "MEMORY GATE FAIL %s: %llu pool misses across %d "
                   "steady-state iterations (expected 0)\n",
                   algorithm, static_cast<unsigned long long>(steady_misses),
                   kSteadyIterations);
      all_ok = false;
    }
  }
  registry.gauge("pool.peak_bytes")
      .Set(static_cast<double>(pool.stats().peak_bytes));
  const char* dir = std::getenv("HIPRESS_BENCH_DIR");
  const std::string path = (dir != nullptr ? std::string(dir) + "/" : "") +
                           "BENCH_memory.json";
  const Status status = registry.WriteJson(path);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return false;
  }
  std::printf("memory: steady-state pool misses %s; wrote %s\n",
              all_ok ? "zero for every codec" : "NONZERO (gate failed)",
              path.c_str());
  return all_ok;
}

}  // namespace
}  // namespace hipress

int main(int argc, char** argv) {
  bool smoke = std::getenv("HIPRESS_BENCH_SMOKE") != nullptr;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!hipress::RunVerificationPhase(smoke)) {
    return 1;
  }
  if (!hipress::RunMemoryPhase(smoke)) {
    return 1;
  }
  if (smoke) {
    return 0;  // CI smoke: skip the full google-benchmark sweep
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
