// Table 1: scaling efficiency and communication ratio for Bert-large
// (BytePS +/- onebit) and Transformer (Ring-allreduce +/- DGC) on the
// 16-node / 128-GPU, 100 Gbps EC2 cluster.
//
// Paper values for reference:
//   Transformer  Ring w/o compression      eff 0.47   comm 76.8%
//   Transformer  Ring w/ DGC               eff 0.61   comm 70.3%
//   Bert-large   BytePS w/o compression    eff 0.71   comm 63.6%
//   Bert-large   BytePS w/ onebit          eff 0.76   comm 60.9%
#include "bench/bench_util.h"

using namespace hipress;
using namespace hipress::bench;

int main() {
  const ClusterSpec cluster = ClusterSpec::Ec2(16);
  Header("Table 1: scaling efficiency & communication ratio (16 nodes)");
  std::printf("%-12s %-28s %10s %12s\n", "Model", "System configuration",
              "Scaling", "Comm ratio");

  struct Row {
    const char* model;
    const char* system;
    const char* algorithm;
    const char* label;
  };
  const Row rows[] = {
      {"transformer", "ring", "dgc", "Ring w/o compression"},
      {"transformer", "ring-oss", "dgc", "Ring w/ DGC compression"},
      {"bert-large", "byteps", "onebit", "BytePS w/o compression"},
      {"bert-large", "byteps-oss", "onebit", "BytePS w/ onebit"},
  };
  CompressorParams params;
  params.sparsity_ratio = 0.001;  // DGC at 0.1%
  for (const Row& row : rows) {
    const TrainReport report =
        Run(row.model, row.system, cluster, row.algorithm, params);
    std::printf("%-12s %-28s %10.2f %11.1f%%\n", row.model, row.label,
                report.scaling_efficiency, report.comm_ratio * 100.0);
  }
  std::printf(
      "\npaper: Ring 0.47/76.8%% -> Ring-DGC 0.61/70.3%%; "
      "BytePS 0.71/63.6%% -> BytePS-onebit 0.76/60.9%%\n");
  return 0;
}
