// Table 5: implementation and integration cost (lines of code) of the five
// algorithms, open-source versions vs CompLL.
//
// The OSS logic/integration line counts are the paper's reported values for
// the external codebases (BytePS onebit, Strom's TBQ, TernGrad, the Horovod
// DGC PR); our CompLL columns are measured from the DSL programs this
// repository ships: total non-comment lines, the subset inside user-defined
// functions, and the number of distinct common operators used. Integration
// cost is 0 by construction — DslCompressor registers generated algorithms
// into the framework automatically.
#include <cstdio>
#include <set>
#include <string>

#include "src/common/string_util.h"
#include "src/compll/builtin_algorithms.h"

using namespace hipress;
using namespace hipress::compll;

namespace {

struct OssCost {
  const char* name;
  int logic;
  int integration;
};

// Counts lines belonging to user-defined functions (every function except
// the encode/decode entry points), and entry-point logic lines.
void SplitLines(const char* source, int* logic, int* udf) {
  *logic = 0;
  *udf = 0;
  bool in_function = false;
  bool in_entry = false;
  int depth = 0;
  for (const std::string& raw : Split(source, '\n')) {
    const std::string line = Trim(raw);
    if (line.empty() || StartsWith(line, "//")) {
      continue;
    }
    if (!in_function && line.find('(') != std::string::npos &&
        line.find(')') != std::string::npos &&
        line.find('{') != std::string::npos) {
      in_function = true;
      in_entry = StartsWith(line, "void encode") ||
                 StartsWith(line, "void decode");
    }
    if (in_function) {
      (in_entry ? *logic : *udf) += 1;
      for (char c : line) {
        if (c == '{') {
          ++depth;
        }
        if (c == '}') {
          --depth;
        }
      }
      if (depth == 0) {
        in_function = false;
      }
    } else {
      *logic += 1;  // params / globals count as algorithm logic
    }
  }
}

int CountOperators(const char* source) {
  static const char* kOperators[] = {"sort(",   "filter(", "map(",
                                     "reduce(", "random<", "concat(",
                                     "extract<"};
  std::set<std::string> used;
  const std::string text(source);
  for (const char* op : kOperators) {
    if (text.find(op) != std::string::npos) {
      used.insert(op);
    }
  }
  return static_cast<int>(used.size());
}

}  // namespace

int main() {
  std::printf("\n==== Table 5: implementation/integration cost (LoC) ====\n");
  std::printf("%-10s | %-18s | %-32s\n", "", "OSS", "CompLL (measured)");
  std::printf("%-10s | %6s %11s | %6s %5s %9s %11s\n", "Algorithm", "logic",
              "integration", "logic", "udf", "#operators", "integration");

  const OssCost oss_costs[] = {
      {"onebit", 80, 445},  {"tbq", 100, 384},      {"terngrad", 170, 513},
      {"dgc", 1298, 1869},  {"graddrop", -1, -1},
  };
  for (const OssCost& oss : oss_costs) {
    const DslAlgorithm* algorithm = FindDslAlgorithm(oss.name);
    int logic = 0;
    int udf = 0;
    SplitLines(algorithm->source, &logic, &udf);
    const int operators = CountOperators(algorithm->source);
    char oss_logic[16];
    char oss_integration[16];
    if (oss.logic < 0) {
      std::snprintf(oss_logic, sizeof(oss_logic), "N/A");
      std::snprintf(oss_integration, sizeof(oss_integration), "N/A");
    } else {
      std::snprintf(oss_logic, sizeof(oss_logic), "%d", oss.logic);
      std::snprintf(oss_integration, sizeof(oss_integration), "%d",
                    oss.integration);
    }
    std::printf("%-10s | %6s %11s | %6d %5d %9d %11d\n", oss.name, oss_logic,
                oss_integration, logic, udf, operators, 0);
  }
  std::printf(
      "\npaper CompLL columns: onebit 21/9/4, TBQ 13/18/3, TernGrad 23/7/5, "
      "DGC 29/15/6, GradDrop 29/21/6; integration 0 for all\n");
  return 0;
}
