// Ablations of the repository's own design choices (DESIGN.md's list),
// beyond the paper's Figure 11:
//
//   1. Bulk coordinator batching vs direct sends, across per-message-cost
//      regimes (when does coordinated bulk communication matter?).
//   2. Partition-count sweep for a large gradient (the convexity SeCoPa
//      exploits, measured end to end rather than from the cost model).
//   3. SeCoPa vs compress-all vs compress-none on a mixed-size model.
//   4. BSP vs SSP staleness (the Section 7 extension).
#include "bench/bench_util.h"
#include "src/common/string_util.h"

using namespace hipress;
using namespace hipress::bench;

namespace {

TrainReport RunConfig(const char* model, SyncConfig config,
                      TrainOptions options = {}) {
  auto profile = GetModelProfile(model);
  auto report = SimulateTraining(*profile, config, options);
  if (!report.ok()) {
    std::fprintf(stderr, "ablation run failed: %s\n",
                 report.status().ToString().c_str());
    std::abort();
  }
  return *report;
}

SyncConfig HiPressPs(const ClusterSpec& cluster) {
  return *MakeSystemConfig("hipress-ps", cluster, "onebit");
}

}  // namespace

int main() {
  BenchReporter reporter("ablation");
  // ---------------------------------------------------------------- bulk --
  Header("Ablation 1: bulk coordinator vs direct sends (Bert-base, PS)");
  std::printf("%-26s %16s %16s\n", "per-message cost",
              "direct tail", "bulk tail");
  for (double overhead_us : {3.0, 12.0, 50.0, 200.0}) {
    ClusterSpec cluster = ClusterSpec::Ec2(16);
    cluster.net.per_message_overhead = FromMicros(overhead_us);
    SyncConfig config = HiPressPs(cluster);
    config.bulk = false;
    const TrainReport direct = RunConfig("bert-base", config);
    config.bulk = true;
    const TrainReport bulk = RunConfig("bert-base", config);
    std::printf("%22.0fus %14.2fms %14.2fms\n", overhead_us,
                ToMillis(direct.sync_tail), ToMillis(bulk.sync_tail));
    const std::string key = StrFormat("bulk.overhead_%.0fus", overhead_us);
    reporter.Record(key + ".direct", direct);
    reporter.Record(key + ".bulk", bulk);
  }
  std::printf("(batching pays once per-message costs dominate small "
              "gradients)\n");

  // ------------------------------------------------------------ partitions
  Header("Ablation 2: partition count for VGG19's 392MB gradient (PS)");
  std::printf("%-12s %16s\n", "partitions", "iteration");
  for (int partitions : {1, 2, 4, 8, 16, 32, 64}) {
    ClusterSpec cluster = ClusterSpec::Ec2(16);
    SyncConfig config = HiPressPs(cluster);
    config.secopa = false;
    config.fixed_partitions = partitions;
    config.ps_partition_bytes = 392 * kMiB / partitions;
    const TrainReport report = RunConfig("vgg19", config);
    std::printf("%-12d %14.2fms\n", partitions,
                ToMillis(report.iteration_time));
    reporter.Record(StrFormat("partitions.%d", partitions), report);
  }

  // ---------------------------------------------------------------- secopa
  Header("Ablation 3: selective compression policies (Bert-base, PS)");
  {
    ClusterSpec cluster = ClusterSpec::Ec2(16);
    SyncConfig config = HiPressPs(cluster);
    const TrainReport secopa = RunConfig("bert-base", config);
    config.secopa = false;  // compress everything, 4MB slices
    const TrainReport all = RunConfig("bert-base", config);
    SyncConfig none = config;
    none.compression = false;
    const TrainReport raw = RunConfig("bert-base", none);
    std::printf("%-22s %14.2fms tail\n", "compress none",
                ToMillis(raw.sync_tail));
    std::printf("%-22s %14.2fms tail\n", "compress everything",
                ToMillis(all.sync_tail));
    std::printf("%-22s %14.2fms tail\n", "SeCoPa",
                ToMillis(secopa.sync_tail));
    reporter.Record("secopa.none", raw);
    reporter.Record("secopa.all", all);
    reporter.Record("secopa.secopa", secopa);
  }

  // ------------------------------------------------------------------- ssp
  Header("Ablation 4: BSP vs SSP staleness (Bert-large, Ring baseline)");
  std::printf("%-12s %16s %12s\n", "staleness", "iteration", "speedup");
  double bsp_iter = 0.0;
  for (int staleness : {0, 1, 2}) {
    ClusterSpec cluster = ClusterSpec::Ec2(16);
    SyncConfig config = *MakeSystemConfig("ring", cluster, "onebit");
    TrainOptions options;
    options.staleness = staleness;
    options.iterations = staleness > 0 ? 8 : 2;
    const TrainReport report = RunConfig("bert-large", config, options);
    reporter.Record(StrFormat("ssp.staleness_%d", staleness), report);
    if (staleness == 0) {
      bsp_iter = static_cast<double>(report.iteration_time);
    }
    std::printf("%-12d %14.2fms %11.2fx\n", staleness,
                ToMillis(report.iteration_time),
                bsp_iter / static_cast<double>(report.iteration_time));
  }
  std::printf("(staleness pipelines the sync tail behind the next "
              "iteration's compute)\n");

  // ------------------------------------------------------------ topology --
  Header("Ablation 5: CaSync topology generality (Bert-large, onebit)");
  std::printf("%-14s %14s %10s %16s\n", "topology", "throughput", "eff",
              "sync tail");
  for (const char* system : {"hipress-ps", "hipress-ring", "hipress-tree"}) {
    const TrainReport report =
        Run("bert-large", system, ClusterSpec::Ec2(16), "onebit");
    std::printf("%-14s %14.0f %10.3f %14.2fms\n", system, report.throughput,
                report.scaling_efficiency, ToMillis(report.sync_tail));
    reporter.Record(std::string("topology.") + system, report);
  }
  std::printf("(the same primitives and engine drive PS, ring and binomial "
              "tree)\n");

  // ---------------------------------------------------------- robustness --
  Header("Ablation 6: dynamics (the cost model's future-work concern)");
  std::printf("%-34s %14s %10s\n", "condition", "HiPress tput", "vs Ring");
  for (double jitter : {0.0, 0.15, 0.3, 0.5}) {
    ClusterSpec cluster = ClusterSpec::Ec2(16);
    cluster.net.bandwidth_jitter = jitter;
    const TrainReport base = Run("bert-large", "ring", cluster, "onebit");
    const TrainReport hipress =
        Run("bert-large", "hipress-ps", cluster, "onebit");
    std::printf("bandwidth jitter %3.0f%% %12s %14.0f %9.2fx\n",
                jitter * 100.0, "", hipress.throughput,
                hipress.throughput / base.throughput);
  }
  {
    HiPressOptions options;
    options.model = "bert-large";
    options.system = "hipress-ps";
    options.cluster = ClusterSpec::Ec2(16);
    auto clean = RunTrainingSimulation(options);
    options.train.straggler_node = 7;
    options.train.straggler_factor = 1.5;
    auto bsp = RunTrainingSimulation(options);
    options.train.staleness = 1;
    options.train.iterations = 8;
    auto ssp = RunTrainingSimulation(options);
    if (clean.ok() && bsp.ok() && ssp.ok()) {
      std::printf("1.5x straggler, BSP %10s %14.0f %9.2fx slower\n", "",
                  bsp->report.throughput,
                  static_cast<double>(bsp->report.iteration_time) /
                      clean->report.iteration_time);
    }
  }
  std::printf("(plans computed from clean profiles keep their advantage "
              "under 50%% jitter;\n BSP stretches with the straggler — the "
              "synchronous-coordination cost Section 2.1 notes)\n");
  reporter.Write();
  return 0;
}
