// Figure 7: end-to-end training throughput of the computer-vision models on
// the EC2 V100 cluster, weak scaling from 8 to 128 GPUs (1 to 16 nodes).
//
//   (a) VGG19 atop MXNet: BytePS, Ring, BytePS(OSS-onebit),
//       HiPress-CaSync-PS/Ring(CompLL-onebit)
//   (b) ResNet50 atop TensorFlow: BytePS, Ring, Ring(OSS-DGC),
//       HiPress-CaSync-Ring(CompLL-DGC)
//   (c) UGATIT atop PyTorch: BytePS, Ring,
//       HiPress-CaSync-PS(CompLL-TernGrad)
#include <vector>

#include "bench/bench_util.h"

using namespace hipress;
using namespace hipress::bench;

namespace {

struct Series {
  const char* label;
  const char* system;
  const char* algorithm;
};

void Panel(const char* title, const char* model,
           const std::vector<Series>& series, const CompressorParams& params) {
  Header(title);
  std::printf("%-34s", "samples/sec @ GPUs:");
  for (int nodes : {1, 2, 4, 8, 16}) {
    std::printf(" %9d", nodes * 8);
  }
  std::printf("\n");
  for (const Series& s : series) {
    std::printf("%-34s", s.label);
    for (int nodes : {1, 2, 4, 8, 16}) {
      const TrainReport report =
          Run(model, s.system, ClusterSpec::Ec2(nodes), s.algorithm, params);
      std::printf(" %9.0f", report.throughput);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  CompressorParams params;
  params.sparsity_ratio = 0.001;

  Panel("Figure 7a: VGG19 (MXNet, onebit)", "vgg19",
        {{"BytePS", "byteps", "onebit"},
         {"Ring", "ring", "onebit"},
         {"BytePS(OSS-onebit)", "byteps-oss", "onebit"},
         {"HiPress-CaSync-PS(CompLL-onebit)", "hipress-ps", "onebit"},
         {"HiPress-CaSync-Ring(CompLL-onebit)", "hipress-ring", "onebit"}},
        params);

  Panel("Figure 7b: ResNet50 (TensorFlow, DGC)", "resnet50",
        {{"BytePS", "byteps", "dgc"},
         {"Ring", "ring", "dgc"},
         {"Ring(OSS-DGC)", "ring-oss", "dgc"},
         {"HiPress-CaSync-Ring(CompLL-DGC)", "hipress-ring", "dgc"}},
        params);

  CompressorParams terngrad_params;
  terngrad_params.bitwidth = 2;
  Panel("Figure 7c: UGATIT (PyTorch, TernGrad)", "ugatit",
        {{"BytePS", "byteps", "terngrad"},
         {"Ring", "ring", "terngrad"},
         {"HiPress-CaSync-PS(CompLL-TernGrad)", "hipress-ps", "terngrad"}},
        terngrad_params);
  return 0;
}
