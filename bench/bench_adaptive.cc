// bench_adaptive — the runtime-adaptive compression controller under a
// mid-run bandwidth collapse (docs/ADAPTIVE.md).
//
// Three panels:
//  1. recovery: hipress-ps/vgg19 with every link degraded to half bandwidth
//     a few iterations in. Three runs — fixed codec at full bandwidth,
//     fixed codec under the degradation, adaptive under the degradation —
//     and the gate: the controller must recover at least 50% of the
//     steady-state iteration-time gap the collapse opened
//       recovery = (t_fixed_degraded - t_adaptive) /
//                  (t_fixed_degraded - t_fixed_full) >= 0.5
//     plus sanity gates (the collapse actually hurt; the controller
//     actually re-planned; no codec flapping).
//  2. replay: the adaptive run executes twice with the same seed and fault
//     spec; the decision logs must match byte-for-byte (decisions are a
//     pure function of observed inputs — no wall clock, no unseeded
//     randomness).
//  3. switch integrity: the codec sequence the controller chose is driven
//     through the real-data engine path (pooled staging -> coordinator
//     batch frames -> delivery) twice; delivered bytes must be
//     bit-identical across the replays for every rung, so a codec switch
//     never corrupts what the wire delivers.
//
// Dumps BENCH_adaptive.json (archived by CI bench-smoke, diffed against
// bench/baselines by the bench-regression job); exits non-zero when any
// gate fails. `--smoke` (or HIPRESS_BENCH_SMOKE=1) shrinks iteration
// counts for CI.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/casync/engine.h"
#include "src/compress/registry.h"
#include "src/net/fault.h"
#include "src/net/network.h"
#include "src/simgpu/gpu.h"

using namespace hipress;
using namespace hipress::bench;

namespace {

constexpr int kNodes = 8;
constexpr const char* kModel = "vgg19";
constexpr const char* kConfiguredCodec = "fp16";
constexpr const char* kCandidateCodec = "onebit";
// Every link drops to half bandwidth 30 ms in and never recovers.
constexpr const char* kDegradeSpec = "degrade=*-*@30-1000000@0.5";

HiPressOptions ScenarioOptions(int iterations, bool adaptive,
                               bool degraded) {
  HiPressOptions options;
  options.model = kModel;
  options.system = "hipress-ps";
  options.algorithm = kConfiguredCodec;
  options.cluster = ClusterSpec::Ec2(kNodes);
  options.train.iterations = iterations;
  if (degraded) {
    auto faults = ParseFaultSpec(kDegradeSpec);
    if (!faults.ok()) {
      std::fprintf(stderr, "fault spec: %s\n",
                   faults.status().ToString().c_str());
      std::abort();
    }
    options.cluster.net.faults = *faults;
  }
  if (adaptive) {
    options.train.adaptive.enabled = true;
    options.train.adaptive.candidate_algorithms = {kCandidateCodec};
  }
  return options;
}

TrainReport MustRun(const HiPressOptions& options) {
  auto result = RunTrainingSimulation(options);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return result->report;
}

// Steady-state iteration time: mean over the last `k` iterations, past the
// controller's detect/trigger/cooldown transient.
double MeanLastKMs(const TrainReport& report, int k) {
  const auto& steps = report.steps;
  if (static_cast<int>(steps.size()) < k) {
    std::fprintf(stderr, "run produced %zu steps, need %d\n", steps.size(),
                 k);
    std::abort();
  }
  double total = 0.0;
  for (size_t i = steps.size() - static_cast<size_t>(k); i < steps.size();
       ++i) {
    total += steps[i].iteration_ms;
  }
  return total / k;
}

bool RunRecoveryPanel(BenchReporter& reporter, int iterations, int tail) {
  Header("adaptive: bandwidth-collapse recovery");
  const TrainReport full =
      MustRun(ScenarioOptions(iterations, /*adaptive=*/false,
                              /*degraded=*/false));
  const TrainReport fixed_deg =
      MustRun(ScenarioOptions(iterations, /*adaptive=*/false,
                              /*degraded=*/true));
  const TrainReport adapt_deg =
      MustRun(ScenarioOptions(iterations, /*adaptive=*/true,
                              /*degraded=*/true));

  const double t_full = MeanLastKMs(full, tail);
  const double t_fixed = MeanLastKMs(fixed_deg, tail);
  const double t_adapt = MeanLastKMs(adapt_deg, tail);
  const double gap = t_fixed - t_full;
  const double recovery = gap > 0.0 ? (t_fixed - t_adapt) / gap : 0.0;

  std::printf("%-32s %14s %14s\n", "", "iter_ms(tail)", "throughput");
  std::printf("%-32s %14.2f %14.0f\n", "fixed, full bandwidth", t_full,
              full.throughput);
  std::printf("%-32s %14.2f %14.0f\n", "fixed, degraded", t_fixed,
              fixed_deg.throughput);
  std::printf("%-32s %14.2f %14.0f\n", "adaptive, degraded", t_adapt,
              adapt_deg.throughput);
  std::printf("gap %.2f ms, recovered %.0f%%  (%d replan(s), %d codec "
              "switch(es), final %s)\n",
              gap, recovery * 100.0, adapt_deg.adaptive.replans,
              adapt_deg.adaptive.codec_switches,
              adapt_deg.adaptive.final_algorithm.c_str());

  reporter.Record("full", full);
  reporter.Record("fixed_degraded", fixed_deg);
  reporter.Record("adaptive_degraded", adapt_deg);
  reporter.registry().gauge("recovery.tail_iter_ms_full").Set(t_full);
  reporter.registry().gauge("recovery.tail_iter_ms_fixed").Set(t_fixed);
  reporter.registry().gauge("recovery.tail_iter_ms_adaptive").Set(t_adapt);
  reporter.registry().gauge("recovery.fraction").Set(recovery);
  reporter.registry().gauge("recovery.replans")
      .Set(static_cast<double>(adapt_deg.adaptive.replans));
  reporter.registry().gauge("recovery.codec_switches")
      .Set(static_cast<double>(adapt_deg.adaptive.codec_switches));

  bool ok = true;
  if (gap <= 0.0) {
    std::fprintf(stderr, "GATE: bandwidth collapse did not slow the fixed "
                         "run — the scenario exercises nothing\n");
    ok = false;
  }
  if (adapt_deg.adaptive.replans < 1) {
    std::fprintf(stderr, "GATE: controller never re-planned under a halved "
                         "link\n");
    ok = false;
  }
  if (adapt_deg.adaptive.codec_switches > 2) {
    std::fprintf(stderr,
                 "GATE: %d codec switches — hysteresis failed to stop "
                 "flapping\n",
                 adapt_deg.adaptive.codec_switches);
    ok = false;
  }
  if (static_cast<int>(adapt_deg.adaptive.decisions.size()) != iterations) {
    std::fprintf(stderr, "GATE: %zu decisions for %d iterations (want 1:1)\n",
                 adapt_deg.adaptive.decisions.size(), iterations);
    ok = false;
  }
  if (recovery < 0.5) {
    std::fprintf(stderr,
                 "GATE: recovered %.0f%% of the degradation gap "
                 "(need >= 50%%)\n",
                 recovery * 100.0);
    ok = false;
  }
  return ok;
}

bool RunReplayPanel(BenchReporter& reporter, int iterations) {
  Header("adaptive: decision replay determinism");
  const HiPressOptions options =
      ScenarioOptions(iterations, /*adaptive=*/true, /*degraded=*/true);
  const TrainReport first = MustRun(options);
  const TrainReport second = MustRun(options);
  const bool identical =
      first.adaptive.decision_log == second.adaptive.decision_log;
  std::printf("%zu decision(s), logs %s\n",
              first.adaptive.decisions.size(),
              identical ? "bit-identical" : "DIVERGED");
  if (!identical) {
    std::fprintf(stderr, "--- first ---\n%s--- second ---\n%s",
                 first.adaptive.decision_log.c_str(),
                 second.adaptive.decision_log.c_str());
  }
  reporter.registry().gauge("replay.decisions")
      .Set(static_cast<double>(first.adaptive.decisions.size()));
  reporter.registry().gauge("replay.identical").Set(identical ? 1.0 : 0.0);
  if (!identical) {
    std::fprintf(stderr, "GATE: replay produced a different decision log\n");
  }
  return identical;
}

// ---------------------------------------------------------------------------
// Panel 3: drive the chosen codec sequence through the real-data engine
// path twice and require bit-identical delivered bytes.
// ---------------------------------------------------------------------------

SyncConfig SwitchEngineConfig(const std::string& algorithm) {
  SyncConfig config;
  config.strategy = StrategyKind::kPs;
  config.num_nodes = 3;
  config.compression = true;
  config.algorithm = algorithm;
  config.bulk = true;
  config.net.link_bandwidth = Bandwidth::Gbps(40.0);
  config.net.latency = FromMicros(10.0);
  config.net.per_message_overhead = FromMicros(2.0);
  return config;
}

struct EngineCluster {
  EngineCluster(const SyncConfig& config, MetricsRegistry* metrics)
      : net(&sim, config.num_nodes, config.net, metrics) {
    for (int node = 0; node < config.num_nodes; ++node) {
      gpu_storage.push_back(std::make_unique<GpuDevice>(&sim, node));
      gpus.push_back(gpu_storage.back().get());
      gpus.back()->set_staging_pool(net.wire_pool());
    }
    engine = std::make_unique<CaSyncEngine>(&sim, &net, gpus, config, metrics);
  }

  Simulator sim;
  Network net;
  std::vector<std::unique_ptr<GpuDevice>> gpu_storage;
  std::vector<GpuDevice*> gpus;
  std::unique_ptr<CaSyncEngine> engine;
};

std::vector<float> TestGradient(size_t elements) {
  std::vector<float> gradient(elements);
  for (size_t i = 0; i < elements; ++i) {
    const float sign = (i % 5 == 0) ? -1.0f : 1.0f;
    gradient[i] = sign * (0.125f + 0.002f * static_cast<float>(i % 131));
  }
  return gradient;
}

// One pass over the codec sequence: per rung, ApplyCodec on the idle
// engine, encode the gradient into pooled staging on worker 1, ship it to
// node 0 through the coordinator, and record the delivered bytes.
std::vector<std::vector<uint8_t>> RunCodecSequence(
    const std::vector<std::string>& sequence, std::span<const float> gradient) {
  SyncConfig config = SwitchEngineConfig(sequence[0]);
  MetricsRegistry metrics;
  EngineCluster cluster(config, &metrics);
  std::vector<std::vector<uint8_t>> delivered(sequence.size());
  for (size_t s = 0; s < sequence.size(); ++s) {
    auto codec_or = CreateCompressor(sequence[s]);
    if (!codec_or.ok()) {
      std::fprintf(stderr, "codec %s: %s\n", sequence[s].c_str(),
                   codec_or.status().ToString().c_str());
      std::abort();
    }
    std::unique_ptr<Compressor> codec = std::move(*codec_or);
    cluster.engine->ApplyCodec(
        sequence[s], config.codec_impl,
        GetCodecSpeed(sequence[s], config.codec_impl, config.platform));
    auto staged = cluster.gpus[1]->AcquireSharedStaging(
        codec->WorstCaseEncodedSize(gradient.size()));
    auto written = codec->EncodeInto(gradient, staged->span());
    if (!written.ok()) {
      std::fprintf(stderr, "encode failed: %s\n",
                   written.status().ToString().c_str());
      std::abort();
    }
    staged->resize(*written);
    TaskGraph graph;
    SyncTask send;
    send.type = PrimitiveType::kSend;
    send.node = 1;
    send.peer = 0;
    send.bytes = staged->size();
    send.gradient_id = static_cast<uint32_t>(s);
    send.payload = std::move(staged);
    std::vector<uint8_t>* sink = &delivered[s];
    send.deliver = [sink](std::span<const uint8_t> bytes) {
      sink->assign(bytes.begin(), bytes.end());
    };
    graph.Add(send);
    bool done = false;
    cluster.engine->Execute(&graph, [&done] { done = true; });
    cluster.sim.Run();
    if (!done) {
      std::fprintf(stderr, "send round for %s did not complete\n",
                   sequence[s].c_str());
      std::abort();
    }
  }
  return delivered;
}

bool RunSwitchIntegrityPanel(BenchReporter& reporter, bool smoke) {
  Header("adaptive: codec-switch delivered-bytes replay integrity");
  const size_t elements = smoke ? 32 * 1024 : 128 * 1024;
  const std::vector<float> gradient = TestGradient(elements);
  // The ladder walk the recovery scenario takes, plus the relax direction.
  const std::vector<std::string> sequence = {
      kConfiguredCodec, kCandidateCodec, kConfiguredCodec};
  const auto first = RunCodecSequence(sequence, gradient);
  const auto second = RunCodecSequence(sequence, gradient);
  bool identical = true;
  for (size_t s = 0; s < sequence.size(); ++s) {
    const bool match = first[s].size() == second[s].size() &&
                       std::memcmp(first[s].data(), second[s].data(),
                                   first[s].size()) == 0;
    std::printf("rung %zu (%s): %zu delivered bytes, replay %s\n", s,
                sequence[s].c_str(), first[s].size(),
                match ? "identical" : "DIVERGED");
    if (first[s].empty()) {
      std::fprintf(stderr, "GATE: rung %zu delivered no bytes\n", s);
      identical = false;
    }
    if (!match) {
      identical = false;
    }
  }
  reporter.registry().gauge("switch.rungs")
      .Set(static_cast<double>(sequence.size()));
  reporter.registry().gauge("switch.replay_identical")
      .Set(identical ? 1.0 : 0.0);
  if (!identical) {
    std::fprintf(stderr, "GATE: codec switching altered delivered bytes "
                         "across replays\n");
  }
  return identical;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = std::getenv("HIPRESS_BENCH_SMOKE") != nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    }
  }
  const int iterations = smoke ? 8 : 16;
  const int tail = smoke ? 3 : 4;

  BenchReporter reporter("adaptive");
  reporter.registry().gauge("smoke").Set(smoke ? 1.0 : 0.0);

  bool ok = RunRecoveryPanel(reporter, iterations, tail);
  ok = RunReplayPanel(reporter, iterations) && ok;
  ok = RunSwitchIntegrityPanel(reporter, smoke) && ok;
  reporter.registry().gauge("gates_passed").Set(ok ? 1.0 : 0.0);
  reporter.Write();

  if (!ok) {
    std::fprintf(stderr, "\nbench_adaptive: GATE FAILURE\n");
    return 1;
  }
  std::printf("\nbench_adaptive: all gates passed\n");
  return 0;
}
