// Figure 8: end-to-end training throughput of the NLP models on the EC2
// V100 cluster, weak scaling from 8 to 128 GPUs.
//
//   (a) Bert-large atop MXNet (batch 32 sequences, onebit)
//   (b) Transformer atop TensorFlow (batch 2048 tokens, DGC)
//   (c) LSTM atop PyTorch (batch 80 sequences, TernGrad)
#include <vector>

#include "bench/bench_util.h"

using namespace hipress;
using namespace hipress::bench;

namespace {

struct Series {
  const char* label;
  const char* system;
  const char* algorithm;
};

void Panel(const char* title, const char* model, const char* unit,
           const std::vector<Series>& series, const CompressorParams& params) {
  Header(title);
  std::printf("%-34s", (std::string(unit) + "/sec @ GPUs:").c_str());
  for (int nodes : {1, 2, 4, 8, 16}) {
    std::printf(" %9d", nodes * 8);
  }
  std::printf("\n");
  for (const Series& s : series) {
    std::printf("%-34s", s.label);
    for (int nodes : {1, 2, 4, 8, 16}) {
      const TrainReport report =
          Run(model, s.system, ClusterSpec::Ec2(nodes), s.algorithm, params);
      std::printf(" %9.0f", report.throughput);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  CompressorParams onebit_params;
  Panel("Figure 8a: Bert-large (MXNet, onebit)", "bert-large", "sequences",
        {{"BytePS", "byteps", "onebit"},
         {"Ring", "ring", "onebit"},
         {"BytePS(OSS-onebit)", "byteps-oss", "onebit"},
         {"HiPress-CaSync-PS(CompLL-onebit)", "hipress-ps", "onebit"},
         {"HiPress-CaSync-Ring(CompLL-onebit)", "hipress-ring", "onebit"}},
        onebit_params);

  CompressorParams dgc_params;
  dgc_params.sparsity_ratio = 0.001;
  Panel("Figure 8b: Transformer (TensorFlow, DGC)", "transformer", "tokens",
        {{"BytePS", "byteps", "dgc"},
         {"Ring", "ring", "dgc"},
         {"Ring(OSS-DGC)", "ring-oss", "dgc"},
         {"HiPress-CaSync-Ring(CompLL-DGC)", "hipress-ring", "dgc"}},
        dgc_params);

  CompressorParams terngrad_params;
  terngrad_params.bitwidth = 2;
  Panel("Figure 8c: LSTM (PyTorch, TernGrad)", "lstm", "sequences",
        {{"BytePS", "byteps", "terngrad"},
         {"Ring", "ring", "terngrad"},
         {"HiPress-CaSync-PS(CompLL-TernGrad)", "hipress-ps", "terngrad"}},
        terngrad_params);
  return 0;
}
