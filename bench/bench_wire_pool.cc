// bench_wire_pool — steady-state allocation behavior of the pooled wire
// path (docs/COMMUNICATION.md, docs/MEMORY.md).
//
// Two panels:
//  1. engine drive: a 3-worker compressed push/pull round trip through the
//     full pooled chain — onebit encode into shared staging drawn from the
//     network wire pool, coordinator batch frames, reliable-channel
//     retransmits under seeded drop injection. Gates two invariants:
//       (a) zero wire-path pool misses after the warm-up iteration;
//       (b) delivered gradients bit-identical to an unpooled baseline
//           (plain codec calls, no wire pool, no batching, no network).
//  2. trainer drive: a faulted hipress-ps run recording the wire-pool and
//     coordinator counters (net.pool_hits/misses, net.step_pool_misses,
//     coordinator.batch_bucket_waste_bytes), gating the per-iteration
//     steady-state miss gauge at zero.
//
// Dumps BENCH_wire_pool.json (archived by the CI bench-smoke job); the
// process exits non-zero when any gate fails. `--smoke` (or
// HIPRESS_BENCH_SMOKE=1) shrinks sizes for CI.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/casync/engine.h"
#include "src/compress/registry.h"
#include "src/net/fault.h"
#include "src/net/network.h"
#include "src/simgpu/gpu.h"

using namespace hipress;
using namespace hipress::bench;

namespace {

constexpr int kWorkers = 3;

NetworkConfig WireNetConfig() {
  NetworkConfig config;
  config.link_bandwidth = Bandwidth::Gbps(80.0);
  config.latency = FromMicros(10.0);
  config.per_message_overhead = FromMicros(2.0);
  config.faults.drop_prob = 0.05;  // seeded, deterministic schedule
  config.faults.seed = 13;
  return config;
}

SyncConfig WireEngineConfig() {
  SyncConfig config;
  config.strategy = StrategyKind::kPs;
  config.num_nodes = kWorkers;
  config.compression = true;
  config.algorithm = "onebit";
  config.bulk = true;  // payload sends ride coordinator batch frames
  config.net = WireNetConfig();
  config.reliable.max_attempts = 30;
  return config;
}

// Deterministic per-worker gradient, constant across iterations so the
// steady state is the realistic constant-shape training loop.
std::vector<float> WorkerGradient(int worker, size_t elements) {
  std::vector<float> gradient(elements);
  for (size_t i = 0; i < elements; ++i) {
    const float sign = ((i + worker) % 3 == 0) ? -1.0f : 1.0f;
    gradient[i] = sign * (0.25f + 0.001f * static_cast<float>(i % 97) +
                          0.01f * static_cast<float>(worker));
  }
  return gradient;
}

// The unpooled reference: the same push/pull computation with plain codec
// calls. Returns the expected wire payloads and the final pulled gradient.
struct Baseline {
  std::vector<std::vector<uint8_t>> push_wire;  // worker -> encoded push
  std::vector<uint8_t> pull_wire;               // encoded aggregate
  std::vector<float> output;                    // decoded pull
};

Baseline ComputeBaseline(const Compressor& codec,
                         const std::vector<std::vector<float>>& gradients) {
  Baseline base;
  base.push_wire.resize(kWorkers);
  std::vector<float> aggregate = gradients[0];
  ByteBuffer wire;
  for (int w = 1; w < kWorkers; ++w) {
    Status status = codec.Encode(gradients[w], &wire);
    if (!status.ok()) {
      std::fprintf(stderr, "baseline encode failed: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
    base.push_wire[w].assign(wire.data(), wire.data() + wire.size());
    status = codec.DecodeAdd(wire, aggregate);
    if (!status.ok()) {
      std::fprintf(stderr, "baseline decode-add failed: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
  }
  Status status = codec.Encode(aggregate, &wire);
  if (!status.ok()) {
    std::fprintf(stderr, "baseline aggregate encode failed: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
  base.pull_wire.assign(wire.data(), wire.data() + wire.size());
  base.output.resize(gradients[0].size());
  status = codec.Decode(wire, base.output);
  if (!status.ok()) {
    std::fprintf(stderr, "baseline decode failed: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
  return base;
}

struct EngineCluster {
  EngineCluster(const SyncConfig& config, MetricsRegistry* metrics)
      : net(&sim, config.num_nodes, config.net, metrics) {
    for (int node = 0; node < config.num_nodes; ++node) {
      gpu_storage.push_back(std::make_unique<GpuDevice>(&sim, node));
      gpus.push_back(gpu_storage.back().get());
      // Route staging through the wire pool so encode→staging→batch→wire
      // is gated by one allocator.
      gpus.back()->set_staging_pool(net.wire_pool());
    }
    engine = std::make_unique<CaSyncEngine>(&sim, &net, gpus, config, metrics);
  }

  Simulator sim;
  Network net;
  std::vector<std::unique_ptr<GpuDevice>> gpu_storage;
  std::vector<GpuDevice*> gpus;
  std::unique_ptr<CaSyncEngine> engine;
};

// Encodes `gradient` into a staging block drawn from the wire pool.
std::shared_ptr<PooledBytes> EncodeToStaging(const Compressor& codec,
                                             GpuDevice* gpu,
                                             std::span<const float> gradient) {
  auto staged = gpu->AcquireSharedStaging(codec.WorstCaseEncodedSize(
      gradient.size()));
  auto written = codec.EncodeInto(gradient, staged->span());
  if (!written.ok()) {
    std::fprintf(stderr, "staging encode failed: %s\n",
                 written.status().ToString().c_str());
    std::abort();
  }
  staged->resize(*written);  // shrink keeps the pooled block
  return staged;
}

// Runs one payload hop (src -> dst per entry) through the engine and
// collects the delivered bytes per tag into `received`.
void RunSendRound(EngineCluster& cluster,
                  std::vector<std::shared_ptr<PooledBytes>> payloads,
                  const std::vector<int>& srcs, const std::vector<int>& dsts,
                  std::vector<std::vector<uint8_t>>* received) {
  TaskGraph graph;
  for (size_t i = 0; i < payloads.size(); ++i) {
    SyncTask send;
    send.type = PrimitiveType::kSend;
    send.node = srcs[i];
    send.peer = dsts[i];
    send.bytes = payloads[i]->size();
    send.gradient_id = static_cast<uint32_t>(i);
    send.payload = std::move(payloads[i]);
    std::vector<uint8_t>* sink = &(*received)[i];
    send.deliver = [sink](std::span<const uint8_t> bytes) {
      sink->assign(bytes.begin(), bytes.end());
    };
    graph.Add(send);
  }
  bool done = false;
  cluster.engine->Execute(&graph, [&done] { done = true; });
  cluster.sim.Run();
  if (!done) {
    std::fprintf(stderr, "engine round did not complete\n");
    std::abort();
  }
}

// Panel 1: the engine-driven gate. Returns false when a gate fails.
bool RunEnginePanel(BenchReporter& reporter, bool smoke) {
  Header("wire pool: engine drive (pooled path vs unpooled baseline)");
  const size_t elements = smoke ? 32 * 1024 : 256 * 1024;
  const int iterations = smoke ? 4 : 8;

  auto codec_or = CreateCompressor("onebit");
  if (!codec_or.ok()) {
    std::fprintf(stderr, "codec: %s\n", codec_or.status().ToString().c_str());
    return false;
  }
  std::unique_ptr<Compressor> codec = std::move(*codec_or);

  std::vector<std::vector<float>> gradients;
  gradients.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    gradients.push_back(WorkerGradient(w, elements));
  }
  const Baseline base = ComputeBaseline(*codec, gradients);

  const SyncConfig config = WireEngineConfig();
  EngineCluster cluster(config, &reporter.registry());

  // Receive-side scratch, reused across iterations (heap, not wire pool).
  std::vector<std::vector<uint8_t>> push_rx(kWorkers);
  std::vector<std::vector<uint8_t>> pull_rx(kWorkers);
  std::vector<float> aggregate;
  std::vector<float> output(elements);
  ByteBuffer rx;

  uint64_t misses_after_warmup = 0;
  bool payloads_identical = true;
  for (int iteration = 0; iteration < iterations; ++iteration) {
    // Push phase: workers 1..n-1 encode and send to the aggregator (0).
    std::vector<std::shared_ptr<PooledBytes>> pushes;
    std::vector<int> srcs;
    std::vector<int> dsts;
    std::vector<std::vector<uint8_t>> rx_by_entry(kWorkers - 1);
    for (int w = 1; w < kWorkers; ++w) {
      pushes.push_back(EncodeToStaging(*codec, cluster.gpus[w], gradients[w]));
      srcs.push_back(w);
      dsts.push_back(0);
    }
    RunSendRound(cluster, std::move(pushes), srcs, dsts, &rx_by_entry);
    for (int w = 1; w < kWorkers; ++w) {
      push_rx[w] = std::move(rx_by_entry[w - 1]);
    }

    // Aggregate in worker order (matches the baseline exactly).
    aggregate = gradients[0];
    for (int w = 1; w < kWorkers; ++w) {
      if (push_rx[w].size() != base.push_wire[w].size() ||
          std::memcmp(push_rx[w].data(), base.push_wire[w].data(),
                      push_rx[w].size()) != 0) {
        std::fprintf(stderr,
                     "iteration %d: delivered push from worker %d differs "
                     "from unpooled baseline\n",
                     iteration, w);
        payloads_identical = false;
      }
      rx.Resize(push_rx[w].size());
      std::memcpy(rx.data(), push_rx[w].data(), push_rx[w].size());
      const Status status = codec->DecodeAdd(rx, aggregate);
      if (!status.ok()) {
        std::fprintf(stderr, "decode-add failed: %s\n",
                     status.ToString().c_str());
        return false;
      }
    }

    // Pull phase: the aggregator encodes once and pushes to each worker.
    std::vector<std::shared_ptr<PooledBytes>> pulls;
    srcs.clear();
    dsts.clear();
    std::vector<std::vector<uint8_t>> pull_by_entry(kWorkers - 1);
    for (int w = 1; w < kWorkers; ++w) {
      pulls.push_back(EncodeToStaging(*codec, cluster.gpus[0], aggregate));
      srcs.push_back(0);
      dsts.push_back(w);
    }
    RunSendRound(cluster, std::move(pulls), srcs, dsts, &pull_by_entry);
    for (int w = 1; w < kWorkers; ++w) {
      pull_rx[w] = std::move(pull_by_entry[w - 1]);
      if (pull_rx[w].size() != base.pull_wire.size() ||
          std::memcmp(pull_rx[w].data(), base.pull_wire.data(),
                      pull_rx[w].size()) != 0) {
        std::fprintf(stderr,
                     "iteration %d: delivered pull at worker %d differs from "
                     "unpooled baseline\n",
                     iteration, w);
        payloads_identical = false;
      }
      rx.Resize(pull_rx[w].size());
      std::memcpy(rx.data(), pull_rx[w].data(), pull_rx[w].size());
      const Status status = codec->Decode(rx, output);
      if (!status.ok()) {
        std::fprintf(stderr, "decode failed: %s\n", status.ToString().c_str());
        return false;
      }
      if (std::memcmp(output.data(), base.output.data(),
                      elements * sizeof(float)) != 0) {
        std::fprintf(stderr,
                     "iteration %d: decoded gradient at worker %d differs "
                     "from unpooled baseline\n",
                     iteration, w);
        payloads_identical = false;
      }
    }

    if (iteration == 0) {
      misses_after_warmup = cluster.net.wire_pool()->stats().misses;
    }
  }

  const BufferPool::Stats wire = cluster.net.wire_pool()->stats();
  const uint64_t steady_misses = wire.misses - misses_after_warmup;
  const uint64_t retries = cluster.engine->reliable_channel() != nullptr
                               ? cluster.engine->reliable_channel()->retries()
                               : 0;
  std::printf(
      "%-28s %12s %12s %10s %10s\n", "", "pool_hits", "pool_misses",
      "steady", "retries");
  std::printf("%-28s %12llu %12llu %10llu %10llu\n", "engine 3-worker onebit",
              static_cast<unsigned long long>(wire.hits),
              static_cast<unsigned long long>(wire.misses),
              static_cast<unsigned long long>(steady_misses),
              static_cast<unsigned long long>(retries));

  reporter.registry().gauge("engine.warmup_pool_misses")
      .Set(static_cast<double>(misses_after_warmup));
  reporter.registry().gauge("engine.steady_pool_misses")
      .Set(static_cast<double>(steady_misses));
  reporter.registry().gauge("engine.payloads_bit_identical")
      .Set(payloads_identical ? 1.0 : 0.0);
  reporter.registry().gauge("engine.iterations")
      .Set(static_cast<double>(iterations));

  bool ok = true;
  if (misses_after_warmup == 0) {
    std::fprintf(stderr, "GATE: warm-up never touched the wire pool — the "
                         "pooled path is not being exercised\n");
    ok = false;
  }
  if (retries == 0) {
    std::fprintf(stderr, "GATE: drop injection produced no retransmits — "
                         "the fault path is not being exercised\n");
    ok = false;
  }
  if (steady_misses != 0) {
    std::fprintf(stderr,
                 "GATE: wire pool missed %llu times after warm-up "
                 "(expected 0)\n",
                 static_cast<unsigned long long>(steady_misses));
    ok = false;
  }
  if (!payloads_identical) {
    std::fprintf(stderr, "GATE: pooled wire path altered delivered bytes\n");
    ok = false;
  }
  return ok;
}

// Panel 2: trainer-level counters under drop injection.
bool RunTrainerPanel(BenchReporter& reporter, bool smoke) {
  Header("wire pool: trainer drive (hipress-ps, drop injection)");
  HiPressOptions options;
  options.model = smoke ? "resnet50" : "vgg19";
  options.system = "hipress-ps";
  options.cluster = ClusterSpec::Ec2(kWorkers);
  auto faults = ParseFaultSpec("drop=0.02,seed=13");
  if (!faults.ok()) {
    std::fprintf(stderr, "fault spec: %s\n",
                 faults.status().ToString().c_str());
    return false;
  }
  options.cluster.net.faults = *faults;
  auto result = RunTrainingSimulation(options);
  if (!result.ok()) {
    std::fprintf(stderr, "trainer run failed: %s\n",
                 result.status().ToString().c_str());
    return false;
  }
  const TrainReport& report = result->report;
  reporter.Record("trainer", report);

  const uint64_t pool_hits = report.metrics->counter("net.pool_hits").value();
  const uint64_t pool_misses =
      report.metrics->counter("net.pool_misses").value();
  const double step_misses =
      report.metrics->gauge("net.step_pool_misses").value();
  const uint64_t waste =
      report.metrics->counter("coordinator.batch_bucket_waste_bytes").value();
  reporter.registry().counter("trainer.net_pool_hits").Increment(pool_hits);
  reporter.registry().counter("trainer.net_pool_misses")
      .Increment(pool_misses);
  reporter.registry().gauge("trainer.net_step_pool_misses").Set(step_misses);
  reporter.registry().counter("trainer.batch_bucket_waste_bytes")
      .Increment(waste);
  reporter.registry()
      .counter("trainer.retries")
      .Increment(report.metrics->counter("net.retries").value());

  std::printf("%-28s %12s %12s %12s %14s\n", "", "pool_hits", "pool_misses",
              "step_misses", "waste_bytes");
  std::printf("%-28s %12llu %12llu %12.0f %14llu\n", options.model.c_str(),
              static_cast<unsigned long long>(pool_hits),
              static_cast<unsigned long long>(pool_misses), step_misses,
              static_cast<unsigned long long>(waste));

  // The steady-state invariant the trainer publishes every iteration: the
  // final iteration's wire-pool miss delta must be zero.
  if (step_misses != 0.0) {
    std::fprintf(stderr,
                 "GATE: trainer reported %.0f wire-pool misses in the final "
                 "iteration (expected 0)\n",
                 step_misses);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = std::getenv("HIPRESS_BENCH_SMOKE") != nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    }
  }

  BenchReporter reporter("wire_pool");
  reporter.registry().gauge("smoke").Set(smoke ? 1.0 : 0.0);

  bool ok = RunEnginePanel(reporter, smoke);
  ok = RunTrainerPanel(reporter, smoke) && ok;
  reporter.registry().gauge("gates_passed").Set(ok ? 1.0 : 0.0);
  reporter.Write();

  if (!ok) {
    std::fprintf(stderr, "\nbench_wire_pool: GATE FAILURE\n");
    return 1;
  }
  std::printf("\nbench_wire_pool: all gates passed\n");
  return 0;
}
