// Shared helpers for the table/figure reproduction benches.
#ifndef HIPRESS_BENCH_BENCH_UTIL_H_
#define HIPRESS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "src/hipress/hipress.h"

namespace hipress::bench {

// Runs one training simulation, aborting the bench with a message on error.
inline TrainReport Run(const std::string& model, const std::string& system,
                       const ClusterSpec& cluster,
                       const std::string& algorithm = "onebit",
                       const CompressorParams& params = {},
                       bool timeline = false) {
  HiPressOptions options;
  options.model = model;
  options.system = system;
  options.algorithm = algorithm;
  options.codec_params = params;
  options.cluster = cluster;
  // The paper runs BytePS without RDMA on EC2 (no EFA support).
  options.disable_rdma = (system == "byteps" || system == "byteps-oss" ||
                          system == "byteps-cpu") &&
                         cluster.platform == GpuPlatform::kV100;
  options.train.record_timeline = timeline;
  auto result = RunTrainingSimulation(options);
  if (!result.ok()) {
    std::fprintf(stderr, "bench run failed (%s/%s): %s\n", model.c_str(),
                 system.c_str(), result.status().ToString().c_str());
    std::abort();
  }
  return result->report;
}

inline void Header(const char* title) {
  std::printf("\n==== %s ====\n", title);
}

}  // namespace hipress::bench

#endif  // HIPRESS_BENCH_BENCH_UTIL_H_
