// Shared helpers for the table/figure reproduction benches.
#ifndef HIPRESS_BENCH_BENCH_UTIL_H_
#define HIPRESS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/common/metrics.h"
#include "src/hipress/hipress.h"

namespace hipress::bench {

// Runs one training simulation, aborting the bench with a message on error.
inline TrainReport Run(const std::string& model, const std::string& system,
                       const ClusterSpec& cluster,
                       const std::string& algorithm = "onebit",
                       const CompressorParams& params = {},
                       bool timeline = false) {
  HiPressOptions options;
  options.model = model;
  options.system = system;
  options.algorithm = algorithm;
  options.codec_params = params;
  options.cluster = cluster;
  // The paper runs BytePS without RDMA on EC2 (no EFA support).
  options.disable_rdma = (system == "byteps" || system == "byteps-oss" ||
                          system == "byteps-cpu") &&
                         cluster.platform == GpuPlatform::kV100;
  options.train.record_timeline = timeline;
  auto result = RunTrainingSimulation(options);
  if (!result.ok()) {
    std::fprintf(stderr, "bench run failed (%s/%s): %s\n", model.c_str(),
                 system.c_str(), result.status().ToString().c_str());
    std::abort();
  }
  return result->report;
}

inline void Header(const char* title) {
  std::printf("\n==== %s ====\n", title);
}

// Machine-readable bench output: collects metrics into a registry and dumps
// them as BENCH_<name>.json (schema in docs/OBSERVABILITY.md), so CI can
// archive a perf trajectory next to the human-readable text. Output lands
// in $HIPRESS_BENCH_DIR when set, else the working directory.
class BenchReporter {
 public:
  explicit BenchReporter(std::string name) : name_(std::move(name)) {}

  MetricsRegistry& registry() { return registry_; }

  // Records the standard TrainReport metrics under `prefix`.
  void Record(const std::string& prefix, const TrainReport& report) {
    registry_.gauge(prefix + ".iteration_ms")
        .Set(ToMillis(report.iteration_time));
    registry_.gauge(prefix + ".sync_tail_ms").Set(ToMillis(report.sync_tail));
    registry_.gauge(prefix + ".throughput").Set(report.throughput);
    registry_.gauge(prefix + ".scaling_efficiency")
        .Set(report.scaling_efficiency);
    registry_.gauge(prefix + ".comm_ratio").Set(report.comm_ratio);
    registry_.gauge(prefix + ".encode_ms")
        .Set(ToMillis(report.engine_stats.encode_time));
    registry_.gauge(prefix + ".decode_ms")
        .Set(ToMillis(report.engine_stats.decode_time));
    registry_.gauge(prefix + ".wire_mb")
        .Set(ToMiB(report.engine_stats.wire_bytes));
    registry_.counter(prefix + ".send_tasks")
        .Increment(report.engine_stats.send_tasks);
  }

  // Writes BENCH_<name>.json; aborts the bench on failure (CI treats the
  // missing artifact as a hard error anyway).
  void Write() {
    const char* dir = std::getenv("HIPRESS_BENCH_DIR");
    const std::string path =
        (dir != nullptr ? std::string(dir) + "/" : std::string()) + "BENCH_" +
        name_ + ".json";
    const Status status = registry_.WriteJson(path);
    if (!status.ok()) {
      std::fprintf(stderr, "bench json write failed: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
    std::printf("\nwrote %s\n", path.c_str());
  }

 private:
  std::string name_;
  MetricsRegistry registry_;
};

}  // namespace hipress::bench

#endif  // HIPRESS_BENCH_BENCH_UTIL_H_
