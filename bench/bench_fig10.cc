// Figure 10: local-cluster (16 nodes, 32x 1080 Ti, 56 Gbps IB) training
// speedups for Bert-base and VGG19 atop MXNet with onebit, normalized to
// the non-compression BytePS baseline.
//
// Paper: HiPress outperforms the non-compression baselines by up to 133.1%
// and BytePS(OSS-onebit) by up to 53.3%; BytePS(OSS-onebit) even runs 8.5%
// slower than Ring.
#include "bench/bench_util.h"

using namespace hipress;
using namespace hipress::bench;

int main() {
  const ClusterSpec cluster = ClusterSpec::Local(16);
  Header("Figure 10: local cluster speedup vs BytePS (32x 1080 Ti, 56Gbps)");
  std::printf("%-38s %12s %12s\n", "System", "Bert-base", "VGG19");

  const char* systems[] = {"byteps", "ring", "byteps-oss", "hipress-ps",
                           "hipress-ring"};
  const char* labels[] = {"BytePS", "Ring", "BytePS(OSS-onebit)",
                          "HiPress-CaSync-PS(CompLL-onebit)",
                          "HiPress-CaSync-Ring(CompLL-onebit)"};

  double bert_base_throughput = 0.0;
  double vgg_base_throughput = 0.0;
  for (int i = 0; i < 5; ++i) {
    const TrainReport bert = Run("bert-base", systems[i], cluster, "onebit");
    const TrainReport vgg = Run("vgg19", systems[i], cluster, "onebit");
    if (i == 0) {
      bert_base_throughput = bert.throughput;
      vgg_base_throughput = vgg.throughput;
    }
    std::printf("%-38s %11.2fx %11.2fx\n", labels[i],
                bert.throughput / bert_base_throughput,
                vgg.throughput / vgg_base_throughput);
  }
  std::printf("\npaper: HiPress up to 2.33x BytePS; OSS-onebit below Ring\n");
  return 0;
}
