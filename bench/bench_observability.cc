// bench_observability — the always-on observability cost gate
// (docs/OBSERVABILITY.md).
//
// Three panels:
//  1. record: raw flight-recorder cost. Chunked tight-loop Record() calls;
//     the median chunk must stay <= 100 ns/event (a relaxed fetch_add plus
//     a 24-byte store leaves ample margin on any modern core).
//  2. overhead: the bench_sim_scale multi-job fat-tree sweep (1024 nodes x
//     4 jobs full, 256 x 2 smoke) with the recorder + watchdog ON (the
//     default every run pays) versus OFF. Gates the median back-to-back
//     pair ratio at <= 3% wall overhead (<= 10% in smoke, whose ~3s runs
//     cannot resolve tighter on a shared runner) and — the part that
//     cannot flake — bit-identical replay fingerprints: observability
//     must never influence a simulation decision.
//  3. watchdog: a scripted iteration-time series with a mid-run stall burst
//     drives a HealthMonitor twice; the stall rule must trip, clear, and
//     reproduce the exact same trip/clear times on the second run.
//
// Dumps BENCH_observability.json (archived by CI bench-smoke, diffed by
// bench-regression; wall metrics are skipped there, gate booleans are
// exact). Exits non-zero when any gate fails. `--smoke` (or
// HIPRESS_BENCH_SMOKE=1) shrinks the sweep for CI.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/flight_recorder.h"
#include "src/common/timeseries.h"
#include "src/common/watchdog.h"
#include "src/train/cluster_job.h"

using namespace hipress;
using namespace hipress::bench;

namespace {

bool g_failed = false;

void Gate(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) {
    g_failed = true;
  }
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Median wall cost of one Record() call: `chunks` timed chunks of `per`
// events each against a cluster-sized recorder, reported as the median
// chunk (tail chunks absorb scheduler preemption).
double MedianRecordNs(int chunks, uint64_t per) {
  FlightRecorder::Options options;
  options.num_nodes = 1024;
  options.events_per_node = 256;
  FlightRecorder recorder(options);
  const uint16_t type = recorder.Intern("bench.event");
  std::vector<double> ns_per_event;
  ns_per_event.reserve(static_cast<size_t>(chunks));
  uint64_t t = 0;
  for (int c = 0; c < chunks; ++c) {
    const auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < per; ++i) {
      ++t;
      recorder.Record(static_cast<int>(i & 1023), type,
                      static_cast<SimTime>(t), i, i ^ 0x5555);
    }
    ns_per_event.push_back(Seconds(start) * 1e9 /
                           static_cast<double>(per));
  }
  std::sort(ns_per_event.begin(), ns_per_event.end());
  return ns_per_event[ns_per_event.size() / 2];
}

// The bench_sim_scale panel-1 configuration: striped concurrent jobs on an
// oversubscribed fat tree through the calendar-queue scheduler.
ClusterJobsOptions ScaleOptions(int nodes, int jobs, bool observability) {
  ClusterJobsOptions options;
  options.cluster = ClusterSpec::Ec2(nodes);
  options.cluster.net.topology.kind = TopologyKind::kFatTree;
  options.cluster.net.topology.oversubscription = 3.0;
  options.cluster.net.topology.hosts_per_tor = 16;
  options.placement = JobPlacement::kStriped;
  options.observability.flight_recorder = observability;
  options.observability.watchdog = observability;
  for (int k = 0; k < jobs; ++k) {
    ClusterJobSpec spec;
    spec.model = "resnet50";
    spec.system = "hipress-ps";
    spec.algorithm = "onebit";
    spec.iterations = 2;
    options.jobs.push_back(spec);
  }
  return options;
}

ClusterRunReport MustRun(const ClusterJobsOptions& options) {
  auto run = RunClusterJobs(options);
  if (!run.ok()) {
    std::fprintf(stderr, "cluster run failed: %s\n",
                 run.status().ToString().c_str());
    std::abort();
  }
  return *std::move(run);
}

// Paired overhead measurement: `reps` back-to-back (on, off) run pairs.
// The DES is deterministic, so wall variance is pure host noise; a pair
// sees nearly the same background load, so the per-pair wall ratio is far
// tighter than comparing independent arm minimums under drifting load.
// Returns the median pair ratio minus one; *on / *off keep each arm's
// fastest run for the deterministic fields (events, fingerprints).
double PairedOverhead(const ClusterJobsOptions& on_options,
                      const ClusterJobsOptions& off_options, int reps,
                      ClusterRunReport* on, ClusterRunReport* off) {
  // Untimed warm-up: the first run after process start pays cold page
  // cache and allocator growth, and it must not land on either arm.
  MustRun(off_options);
  std::vector<double> ratios;
  ratios.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    ClusterRunReport a = MustRun(on_options);
    ClusterRunReport b = MustRun(off_options);
    if (b.wall_seconds > 0) {
      ratios.push_back(a.wall_seconds / b.wall_seconds);
    }
    if (r == 0 || a.wall_seconds < on->wall_seconds) {
      *on = std::move(a);
    }
    if (r == 0 || b.wall_seconds < off->wall_seconds) {
      *off = std::move(b);
    }
  }
  std::sort(ratios.begin(), ratios.end());
  return ratios.empty() ? 0.0 : ratios[ratios.size() / 2] - 1.0;
}

// Scripted watchdog scenario: steady 10 ms iterations, a two-window stall
// burst at 8x the baseline, then recovery. Returns the trip episodes.
std::vector<HealthTrip> ScriptedStallTrips() {
  TimeSeriesHub hub;
  HealthMonitor monitor(&hub, nullptr, nullptr);
  HealthRule stall;
  stall.name = "stall";
  stall.series = "iter_ms";
  stall.kind = HealthRuleKind::kAboveMedianFactor;
  stall.threshold = 3.0;
  monitor.AddRule(stall);
  const double values[] = {10, 10, 10, 10, 10, 80, 80, 10, 10, 10, 10};
  SimTime t = 0;
  for (const double value : values) {
    t += hub.window_width();
    hub.Series("iter_ms").Observe(t, value);
    monitor.Evaluate(t);
  }
  return monitor.Finalize().trips;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = std::getenv("HIPRESS_BENCH_SMOKE") != nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  BenchReporter reporter("observability");
  MetricsRegistry& registry = reporter.registry();

  // -------------------------------------------------------------------
  // Panel 1: raw record cost.
  // -------------------------------------------------------------------
  Header("record: flight-recorder cost per event");
  const int chunks = smoke ? 17 : 65;
  const uint64_t per_chunk = smoke ? 200000 : 1000000;
  const double median_ns = MedianRecordNs(chunks, per_chunk);
  std::printf("  %d chunks x %llu events: median %.1f ns/event\n", chunks,
              static_cast<unsigned long long>(per_chunk), median_ns);
  registry.gauge("record.median_ns").Set(median_ns);
  registry.gauge("record.budget_ns").Set(100.0);
  registry.gauge("record.within_budget").Set(median_ns <= 100.0 ? 1.0 : 0.0);
  Gate(median_ns <= 100.0, "median record cost <= 100 ns/event");

  // -------------------------------------------------------------------
  // Panel 2: whole-run overhead, recorder + watchdog on vs off.
  // -------------------------------------------------------------------
  Header("overhead: observability on vs off on the sim-scale sweep");
  const int nodes = smoke ? 256 : 1024;
  const int jobs = smoke ? 2 : 4;
  const int reps = smoke ? 5 : 3;
  ClusterRunReport on;
  ClusterRunReport off;
  const double overhead = PairedOverhead(
      ScaleOptions(nodes, jobs, true), ScaleOptions(nodes, jobs, false), reps,
      &on, &off);
  const uint64_t recorded = on.flight ? on.flight->events_recorded() : 0;
  std::printf(
      "  %d nodes x %d jobs: on %.3fs, off %.3fs (best of %d pairs), "
      "median pair overhead %+.2f%% (%llu events recorded)\n",
      nodes, jobs, on.wall_seconds, off.wall_seconds, reps, overhead * 100.0,
      static_cast<unsigned long long>(recorded));
  // The 3% budget is the full-config (1024x4, ~27s runs) gate from the
  // design doc; the ~3s smoke runs cannot resolve better than +/-4% on a
  // shared runner, so smoke gets a wider band that still catches a real
  // regression (a 10x cost blowup would read ~20%).
  const double budget = smoke ? 0.10 : 0.03;
  registry.gauge("overhead.nodes").Set(nodes);
  registry.gauge("overhead.jobs").Set(jobs);
  registry.gauge("overhead.on_wall_seconds").Set(on.wall_seconds);
  registry.gauge("overhead.off_wall_seconds").Set(off.wall_seconds);
  registry.gauge("overhead.fraction").Set(overhead);
  registry.gauge("overhead.budget_fraction").Set(budget);
  registry.gauge("overhead.events_recorded")
      .Set(static_cast<double>(recorded));
  registry.gauge("overhead.within_budget")
      .Set(overhead <= budget ? 1.0 : 0.0);
  registry.gauge("overhead.fingerprint_match")
      .Set(on.replay_fingerprint == off.replay_fingerprint ? 1.0 : 0.0);
  Gate(overhead <= budget,
       smoke ? "observability wall overhead <= 10% (smoke band; full runs "
               "gate at 3%)"
             : "observability wall overhead <= 3%");
  Gate(recorded > 0, "recorder actually captured events");
  Gate(on.replay_fingerprint == off.replay_fingerprint,
       "replay fingerprint bit-identical with recorder on/off");

  // -------------------------------------------------------------------
  // Panel 3: deterministic watchdog trip + clear.
  // -------------------------------------------------------------------
  Header("watchdog: scripted stall trips and clears deterministically");
  const std::vector<HealthTrip> first = ScriptedStallTrips();
  const std::vector<HealthTrip> second = ScriptedStallTrips();
  bool identical = first.size() == second.size();
  for (size_t i = 0; identical && i < first.size(); ++i) {
    identical = first[i].rule == second[i].rule &&
                first[i].tripped_at == second[i].tripped_at &&
                first[i].cleared_at == second[i].cleared_at;
  }
  const bool tripped = !first.empty();
  const bool cleared = tripped && first.front().cleared_at >= 0;
  if (tripped) {
    std::printf("  trip at %.0f ms, cleared at %.0f ms (x%zu)\n",
                ToMillis(first.front().tripped_at),
                ToMillis(first.front().cleared_at), first.size());
  } else {
    std::printf("  no trips recorded\n");
  }
  registry.gauge("watchdog.trips").Set(static_cast<double>(first.size()));
  registry.gauge("watchdog.tripped").Set(tripped ? 1.0 : 0.0);
  registry.gauge("watchdog.cleared").Set(cleared ? 1.0 : 0.0);
  registry.gauge("watchdog.deterministic").Set(identical ? 1.0 : 0.0);
  Gate(tripped, "stall rule tripped on the scripted burst");
  Gate(cleared, "stall rule cleared after recovery");
  Gate(identical, "trip/clear times identical across replays");

  reporter.Write();
  if (g_failed) {
    std::printf("\nBENCH FAILED\n");
    return 1;
  }
  std::printf("\nall gates passed\n");
  return 0;
}
