// Figure 11: effect of enabling the synchronization optimizations one by
// one, on the 16-node local cluster with onebit — VGG19 under CaSync-PS and
// Bert-base under CaSync-Ring.
//
// Bars (cumulative):
//   Default      BytePS / Ring without compression
//   on-CPU       + the open-source on-CPU onebit (PS only; Ring's OSS path
//                  is GPU-based)
//   on-GPU       + CompLL's GPU onebit, still serialized in the OSS style
//   +Pipelining  CaSync overlaps compression with communication
//   +Bulk        coordinated bulk communication
//   +SeCoPa      selective compression and partitioning
#include "bench/bench_util.h"

using namespace hipress;
using namespace hipress::bench;

namespace {

TrainReport RunConfig(const char* model, const SyncConfig& config) {
  auto profile = GetModelProfile(model);
  auto report = SimulateTraining(*profile, config);
  if (!report.ok()) {
    std::fprintf(stderr, "fig11 run failed: %s\n",
                 report.status().ToString().c_str());
    std::abort();
  }
  return *report;
}

SyncConfig StageConfig(StrategyKind strategy, const ClusterSpec& cluster,
                       int stage) {
  // Stage 0 handled by presets; stages 1..5 build on the compression path.
  SyncConfig config;
  config.strategy = strategy;
  config.num_nodes = cluster.num_nodes;
  config.gpus_per_node = cluster.gpus_per_node;
  config.platform = cluster.platform;
  config.net = cluster.net;
  config.intra_node_bytes_per_sec = cluster.intra_node_bytes_per_sec;
  config.algorithm = "onebit";
  config.compression = true;
  config.codec_impl = stage == 1 ? CodecImpl::kCpu : CodecImpl::kCompLL;
  config.pipelining = stage >= 3;
  config.bulk = stage >= 4;
  config.secopa = stage >= 5;
  if (strategy == StrategyKind::kRing) {
    config.fixed_partitions = cluster.num_nodes;
    // The pre-CaSync ring stages inherit Horovod's fusion buffers,
    // sequencing, and side-queue codec placement (the TF allreduce path).
    if (stage < 3) {
      config.ring_fusion_bytes = 64 * kMiB;
      config.sequential_collectives = true;
      config.per_gradient_negotiation = FromMicros(400.0);
    }
    config.codec_on_compute_stream = false;
  }
  return config;
}

void Panel(const char* title, const char* panel_key, const char* model,
           StrategyKind strategy, const char* default_system,
           BenchReporter* reporter) {
  const ClusterSpec cluster = ClusterSpec::Local(16);
  Header(title);
  std::printf("%-14s %14s %18s %12s\n", "Stage", "computation",
              "synchronization", "iteration");

  const TrainReport base = Run(model, default_system, cluster, "onebit");
  auto row = [&](const char* label, const TrainReport& report) {
    std::printf("%-14s %12.1fms %16.1fms %10.1fms", label,
                ToMillis(report.compute_time), ToMillis(report.sync_tail),
                ToMillis(report.iteration_time));
    std::printf("   [enc %5.1fms  dec %5.1fms  wire %6.1fMB  msgs %5llu]\n",
                ToMillis(report.engine_stats.encode_time),
                ToMillis(report.engine_stats.decode_time),
                static_cast<double>(report.engine_stats.wire_bytes) /
                    (1024.0 * 1024.0),
                static_cast<unsigned long long>(
                    report.engine_stats.send_tasks));
    reporter->Record(std::string(panel_key) + "." + label, report);
  };
  row("Default", base);
  const char* labels[] = {"", "on-CPU", "on-GPU", "+Pipelining", "+Bulk",
                          "+SeCoPa"};
  for (int stage = 1; stage <= 5; ++stage) {
    if (stage == 1 && strategy == StrategyKind::kRing) {
      std::printf("%-14s %s\n", "on-CPU",
                  "(not applicable: Ring's OSS path is GPU-based)");
      continue;
    }
    row(labels[stage],
        RunConfig(model, StageConfig(strategy, cluster, stage)));
  }
}

}  // namespace

int main() {
  BenchReporter reporter("fig11");
  Panel("Figure 11a: VGG19, CaSync-PS, local cluster", "fig11a.vgg19_ps",
        "vgg19", StrategyKind::kPs, "byteps", &reporter);
  Panel("Figure 11b: Bert-base, CaSync-Ring, local cluster",
        "fig11b.bert_ring", "bert-base", StrategyKind::kRing, "ring",
        &reporter);
  reporter.Write();
  std::printf(
      "\npaper: on-CPU ADDS 32.2%% sync cost for VGG19; on-GPU cuts it by "
      "41.2%%/10.0%%;\npipelining adds 7.8%%/10.6%%; bulk 26.1%%/6.6%%; "
      "SeCoPa 19.9%%/7.4%%; final scaling efficiency 0.90\n");
  return 0;
}
