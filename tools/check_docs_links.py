#!/usr/bin/env python3
"""Documentation link checker.

Validates, for every markdown file under docs/ plus the top-level README.md:

  1. relative markdown links `[text](path)` resolve to an existing file or
     directory (external http(s)/mailto links and pure #anchors are skipped);
  2. backticked repo paths like `src/net/network.h` point at real files.
     Brace groups expand (`src/common/buffer_pool.{h,cc}` checks both),
     glob stars are matched against the tree, and trailing `:123` line
     references are ignored.

Exits non-zero listing every broken reference, so CI fails when a rename
or deletion strands the documentation.
"""

import glob
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Top-level directories whose backticked mentions are treated as repo paths.
PATH_ROOTS = ("src", "docs", "tests", "bench", "examples", "tools")

MD_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN_RE = re.compile(r"`([^`]+)`")
PATH_TOKEN_RE = re.compile(
    r"(?:%s)/[A-Za-z0-9_./{},*-]*" % "|".join(PATH_ROOTS)
)


def expand_braces(token: str) -> list[str]:
    """`a.{h,cc}` -> [`a.h`, `a.cc`]; tokens without braces pass through."""
    match = re.search(r"\{([^{}]*)\}", token)
    if not match:
        return [token]
    expanded = []
    for alt in match.group(1).split(","):
        expanded.extend(
            expand_braces(token[: match.start()] + alt + token[match.end():])
        )
    return expanded


def repo_path_exists(token: str) -> bool:
    token = token.rstrip("/").rstrip(".")
    # Drop a trailing :123 line reference.
    token = re.sub(r":\d+$", "", token)
    if not token:
        return True
    if "*" in token:
        return bool(glob.glob(str(REPO_ROOT / token)))
    return (REPO_ROOT / token).exists()


def check_file(md: Path) -> list[str]:
    errors = []
    text = md.read_text(encoding="utf-8")
    rel = md.relative_to(REPO_ROOT)

    for lineno, line in enumerate(text.splitlines(), start=1):
        for target in MD_LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:  # pure anchor
                continue
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(f"{rel}:{lineno}: broken link ({target})")

        for span in CODE_SPAN_RE.findall(line):
            for token in PATH_TOKEN_RE.findall(span):
                for candidate in expand_braces(token):
                    if not repo_path_exists(candidate):
                        errors.append(
                            f"{rel}:{lineno}: missing path ({candidate})"
                        )
    return errors


def main() -> int:
    files = sorted((REPO_ROOT / "docs").glob("*.md"))
    files.append(REPO_ROOT / "README.md")
    errors = []
    for md in files:
        errors.extend(check_file(md))
    if errors:
        print("\n".join(errors), file=sys.stderr)
        print(f"\n{len(errors)} broken doc reference(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} files: all doc references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
