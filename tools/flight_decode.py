#!/usr/bin/env python3
"""Flight-recorder dump decoder.

Turns the binary black-box dump a run writes on a fatal error, retry-budget
exhaustion, watchdog trip or normal exit (`train_cluster --flight-record`,
docs/OBSERVABILITY.md) back into something a human can read:

    tools/flight_decode.py run.hpfr                       # JSONL on stdout
    tools/flight_decode.py run.hpfr --node 3 --tail 32    # node 3's last 32
    tools/flight_decode.py run.hpfr --perfetto trace.json # lane-21 trace

JSONL output is one object per retained record, ordered by (node, seq):

    {"node": 3, "seq": 251, "t_ns": 181234567, "type": "net.retry",
     "a0": 7, "a1": 4}

`seq` is the record's position in its node's total event stream — when a
ring wrapped, the retained window starts at `head - capacity` and the
dropped prefix is reported on stderr.  --perfetto writes a Chrome
trace-event file with one instant event per record on lane 21 ("flight",
pid = node), mergeable with the trainer's span trace in ui.perfetto.dev.

Binary format (src/common/flight_recorder.h, all little-endian):

    "HPFR" | u32 version | u32 num_types | num_types x (u32 len, bytes)
    u32 num_nodes | u32 capacity | num_nodes x (u64 head, u32 n, n x 24B)

Each 24-byte record is (u64 time_type, u64 a0, u64 a1) with the sim time in
nanoseconds in the top 48 bits of time_type and the interned type id in the
low 16.
"""

import argparse
import json
import os
import struct
import sys

MAGIC = b"HPFR"
SUPPORTED_VERSION = 1


class DumpError(Exception):
    pass


class Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.offset = 0

    def take(self, fmt: str):
        size = struct.calcsize(fmt)
        if self.offset + size > len(self.data):
            raise DumpError(
                f"truncated dump: need {size} bytes at offset {self.offset}, "
                f"have {len(self.data) - self.offset}"
            )
        values = struct.unpack_from(fmt, self.data, self.offset)
        self.offset += size
        return values

    def take_bytes(self, size: int) -> bytes:
        if self.offset + size > len(self.data):
            raise DumpError(f"truncated dump at offset {self.offset}")
        out = self.data[self.offset : self.offset + size]
        self.offset += size
        return out


def decode(data: bytes):
    """Returns (type_names, capacity, nodes) where nodes is a list of
    (head, [record dicts])."""
    reader = Reader(data)
    if reader.take_bytes(4) != MAGIC:
        raise DumpError("not a flight-recorder dump (bad magic)")
    (version,) = reader.take("<I")
    if version != SUPPORTED_VERSION:
        raise DumpError(f"unsupported dump version {version}")
    (num_types,) = reader.take("<I")
    type_names = []
    for _ in range(num_types):
        (length,) = reader.take("<I")
        type_names.append(reader.take_bytes(length).decode("utf-8"))
    num_nodes, capacity = reader.take("<II")
    nodes = []
    for node in range(num_nodes):
        (head,) = reader.take("<Q")
        (count,) = reader.take("<I")
        records = []
        first_seq = head - count
        for i in range(count):
            time_type, a0, a1 = reader.take("<QQQ")
            type_id = time_type & 0xFFFF
            name = (
                type_names[type_id]
                if type_id < len(type_names)
                else f"type#{type_id}"
            )
            records.append(
                {
                    "node": node,
                    "seq": first_seq + i,
                    "t_ns": time_type >> 16,
                    "type": name,
                    "a0": a0,
                    "a1": a1,
                }
            )
        nodes.append((head, records))
    if reader.offset != len(data):
        raise DumpError(
            f"{len(data) - reader.offset} trailing byte(s) after last ring"
        )
    return type_names, capacity, nodes


def write_perfetto(path: str, nodes) -> int:
    """One instant event per record, pid = node, tid = 21 (the "flight"
    trace lane, src/common/metrics.h)."""
    events = []
    named_threads = set()
    for _, records in nodes:
        for record in records:
            node = record["node"]
            if node not in named_threads:
                named_threads.add(node)
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": node,
                        "tid": 21,
                        "args": {"name": "flight"},
                    }
                )
            events.append(
                {
                    "name": record["type"],
                    "ph": "i",
                    "s": "t",
                    "pid": node,
                    "tid": 21,
                    "ts": record["t_ns"] / 1000.0,  # microseconds
                    "args": {"a0": record["a0"], "a1": record["a1"]},
                }
            )
    with open(path, "w", encoding="utf-8") as out:
        json.dump({"traceEvents": events}, out)
    return sum(len(records) for _, records in nodes)


def main() -> int:
    parser = argparse.ArgumentParser(
        description="decode a flight-recorder dump to JSONL or Perfetto"
    )
    parser.add_argument("dump", help="binary dump file (HPFR)")
    parser.add_argument(
        "--node", type=int, default=None, help="only this node's ring"
    )
    parser.add_argument(
        "--tail",
        type=int,
        default=None,
        help="only each ring's last N records",
    )
    parser.add_argument(
        "--perfetto",
        metavar="OUT",
        default=None,
        help="write a Chrome trace-event file instead of JSONL",
    )
    args = parser.parse_args()

    with open(args.dump, "rb") as f:
        data = f.read()
    try:
        type_names, capacity, nodes = decode(data)
    except DumpError as error:
        print(f"{args.dump}: {error}", file=sys.stderr)
        return 1

    if args.node is not None:
        if not 0 <= args.node < len(nodes):
            print(
                f"--node {args.node}: dump has {len(nodes)} node(s)",
                file=sys.stderr,
            )
            return 1
        nodes = [nodes[args.node]]
    if args.tail is not None:
        nodes = [(head, records[-args.tail :]) for head, records in nodes]

    overwritten = sum(max(0, head - capacity) for head, _ in nodes)
    if overwritten:
        print(
            f"note: {overwritten} older event(s) were overwritten in-ring",
            file=sys.stderr,
        )

    if args.perfetto is not None:
        count = write_perfetto(args.perfetto, nodes)
        print(
            f"wrote {args.perfetto} ({count} events, "
            f"{len(type_names)} types)",
            file=sys.stderr,
        )
        return 0

    for _, records in nodes:
        for record in records:
            print(json.dumps(record, separators=(", ", ": ")))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; suppress the traceback the
        # interpreter would print while flushing stdout at exit.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(141)
