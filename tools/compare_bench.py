#!/usr/bin/env python3
"""Bench regression checker.

Diffs freshly produced BENCH_*.json files (bench-smoke artifacts) against
the checked-in baselines in bench/baselines/ and exits non-zero when any
metric drifts outside its tolerance.

The benches run inside a deterministic discrete-event simulation, so their
simulated-time metrics (iteration_ms, comm_ratio, wire_mb, task counters,
...) are machine-independent and can be compared tightly.  Wall-clock
metrics (the bench_kernels encode/decode throughputs) depend on the runner
and are excluded via the tolerance manifest.

Per-metric tolerances live in bench/baselines/TOLERANCES.json:

    {
      "default": {"relative": 0.02, "absolute": 1e-9},
      "rules": [
        {"pattern": "BENCH_kernels:*_MBps", "skip": true},
        {"pattern": "BENCH_adaptive:recovery.fraction",
         "relative": 0.10, "why": "..."}
      ]
    }

A rule's pattern is "<file-stem>:<metric>" matched with fnmatch; the first
matching rule wins, falling back to "default".  A metric passes when

    |new - base| <= relative * |base| + absolute

so zero-valued baselines (e.g. steady_pool_misses) must stay (almost)
exactly zero.  Metrics present in the baseline but missing from the fresh
result fail; new metrics without a baseline entry are reported but pass —
refresh the baseline with --update to start tracking them.

Usage:
    tools/compare_bench.py --baseline-dir bench/baselines --result-dir out
    tools/compare_bench.py --update --result-dir out   # refresh baselines
"""

import argparse
import fnmatch
import json
import shutil
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_metrics(path: Path) -> dict[str, float]:
    """Flattens a BenchReporter JSON into {metric_name: value}.

    Counters and gauges are compared; histogram buckets are skipped (the
    scalar gauges already pin down the simulated timings).
    """
    doc = json.loads(path.read_text())
    flat: dict[str, float] = {}
    for section in ("counters", "gauges"):
        for name, value in doc.get(section, {}).items():
            flat[name] = float(value)
    return flat


class Tolerances:
    def __init__(self, manifest: Path):
        doc = json.loads(manifest.read_text()) if manifest.exists() else {}
        self.default = doc.get("default", {"relative": 0.02, "absolute": 1e-9})
        self.rules = doc.get("rules", [])

    def lookup(self, stem: str, metric: str) -> dict:
        key = f"{stem}:{metric}"
        for rule in self.rules:
            if fnmatch.fnmatch(key, rule["pattern"]):
                return rule
        return self.default


def compare_file(stem: str, baseline: dict[str, float],
                 result: dict[str, float], tol: Tolerances) -> list[str]:
    failures = []
    for metric, base in sorted(baseline.items()):
        rule = tol.lookup(stem, metric)
        if rule.get("skip"):
            continue
        if metric not in result:
            failures.append(f"{stem}:{metric}: missing from fresh result "
                            f"(baseline {base:g})")
            continue
        new = result[metric]
        relative = float(rule.get("relative", tol.default["relative"]))
        absolute = float(rule.get("absolute", tol.default["absolute"]))
        bound = relative * abs(base) + absolute
        if abs(new - base) > bound:
            failures.append(
                f"{stem}:{metric}: {new:g} vs baseline {base:g} "
                f"(|delta| {abs(new - base):g} > {bound:g}; "
                f"rel {relative:g}, abs {absolute:g})")
    for metric in sorted(set(result) - set(baseline)):
        if not tol.lookup(stem, metric).get("skip"):
            print(f"  note: {stem}:{metric} has no baseline entry "
                  f"(value {result[metric]:g}); --update to track it")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", type=Path,
                        default=REPO_ROOT / "bench" / "baselines")
    parser.add_argument("--result-dir", type=Path, required=True,
                        help="directory holding fresh BENCH_*.json files")
    parser.add_argument("--update", action="store_true",
                        help="copy fresh results over the baselines instead "
                             "of comparing")
    args = parser.parse_args()

    results = sorted(args.result_dir.glob("BENCH_*.json"))
    if not results:
        print(f"error: no BENCH_*.json under {args.result_dir}")
        return 2

    if args.update:
        args.baseline_dir.mkdir(parents=True, exist_ok=True)
        for path in results:
            shutil.copy(path, args.baseline_dir / path.name)
            print(f"updated {args.baseline_dir / path.name}")
        return 0

    tol = Tolerances(args.baseline_dir / "TOLERANCES.json")
    failures: list[str] = []
    compared = 0
    for path in results:
        baseline_path = args.baseline_dir / path.name
        if not baseline_path.exists():
            print(f"  note: {path.name} has no checked-in baseline; "
                  f"--update to start tracking it")
            continue
        stem = path.stem
        file_failures = compare_file(stem, load_metrics(baseline_path),
                                     load_metrics(path), tol)
        n = len(load_metrics(baseline_path))
        status = "OK" if not file_failures else f"{len(file_failures)} FAIL"
        print(f"{path.name}: {n} baseline metrics, {status}")
        failures.extend(file_failures)
        compared += 1
    for baseline_path in sorted(args.baseline_dir.glob("BENCH_*.json")):
        if not (args.result_dir / baseline_path.name).exists():
            failures.append(f"{baseline_path.name}: baseline exists but no "
                            f"fresh result was produced")

    if failures:
        print(f"\n{len(failures)} regression(s):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    if compared == 0:
        print("error: nothing compared (no result matched a baseline)")
        return 2
    print(f"\nall {compared} bench file(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
